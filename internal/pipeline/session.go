package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/compose"
	"repro/internal/ctmc"
	"repro/internal/dist"
	"repro/internal/elab"
	"repro/internal/fault"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/noninterference"
	"repro/internal/sim"
)

// stage is a single-flight lazily built artifact: the first caller runs
// the builder (outside the lock), concurrent callers wait on it, and the
// result — value or error — is latched for every later caller, mirroring
// core.BuildCache's cache-failed-builds semantics. The one exception is
// cancellation: a canceled build is returned to its own caller but never
// latched, so a timeout cannot poison the session for everyone else —
// the next caller simply becomes the new builder.
type stage[T any] struct {
	mu   sync.Mutex
	done chan struct{} // non-nil while a build is in flight
	set  bool
	val  T
	err  error
}

// get returns the stage's artifact, building it via build if needed.
// phase names the stage in the *fault.CanceledError a waiter returns when
// its own ctx cancels while another caller is still building.
func (s *stage[T]) get(ctx context.Context, phase string, build func() (T, error)) (T, error) {
	for {
		s.mu.Lock()
		if s.set {
			v, err := s.val, s.err
			s.mu.Unlock()
			return v, err
		}
		if s.done == nil {
			done := make(chan struct{})
			s.done = done
			s.mu.Unlock()
			v, err := build()
			s.mu.Lock()
			s.done = nil
			if err == nil || !canceled(err) {
				s.val, s.err, s.set = v, err, true
			}
			s.mu.Unlock()
			close(done)
			return v, err
		}
		done := s.done
		s.mu.Unlock()
		if ctx == nil {
			<-done
			continue
		}
		select {
		case <-done:
		case <-ctx.Done():
			var zero T
			return zero, &fault.CanceledError{Phase: phase, Point: -1, Iteration: -1, Err: ctx.Err()}
		}
	}
}

// canceled reports whether err is a cooperative-cancellation failure —
// the one kind of build failure a stage must not latch.
func canceled(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ce *fault.CanceledError
	return errors.As(err, &ce)
}

// minimized is the staged artifact of compositional minimization: the
// quotient model the Markovian path generates from, plus the per-instance
// reduction statistics for diagnostics.
type minimized struct {
	m  *elab.Model
	st *compose.Stats
}

// anchorResult is a solved sweep anchor: its report and its steady-state
// solution, the warm-start seed of every other point of the sweep.
type anchorResult struct {
	rep *Phase2Report
	pi  []float64
}

// sessionState owns the staged artifacts of one SpecHash. Every Session
// opened on the same hash (through one Manager) shares a single state, so
// the model is elaborated once, the LTS generated once, the chain built
// once (its structural solve plan computed once, via the chain's own
// lazy plan), and each distinct anchor solved once — no matter how many
// handles, goroutines, or experiment drivers are running.
type sessionState struct {
	spec Spec
	hash SpecHash

	model  stage[*elab.Model]
	minim  stage[minimized]
	ltsS   stage[*lts.LTS]
	chain  stage[*ctmc.CTMC]
	phase2 stage[*Phase2Report]

	anchorMu sync.Mutex
	anchors  map[string]*stage[anchorResult] // keyed by encodePoint(anchor point)
}

func newSessionState(spec Spec, hash SpecHash) *sessionState {
	return &sessionState{spec: spec, hash: hash, anchors: make(map[string]*stage[anchorResult])}
}

// anchor returns the single-flight slot for the anchor at the given
// bit-encoded point.
func (st *sessionState) anchor(key string) *stage[anchorResult] {
	st.anchorMu.Lock()
	defer st.anchorMu.Unlock()
	a, ok := st.anchors[key]
	if !ok {
		a = &stage[anchorResult]{}
		st.anchors[key] = a
	}
	return a
}

// Manager interns session states by SpecHash: Open with an equal-hash
// spec returns a handle on the same staged artifacts. One Manager per
// process (or per service) is the intended shape; independent Managers
// share nothing.
type Manager struct {
	mu       sync.Mutex
	sessions map[SpecHash]*sessionState
}

// NewManager returns an empty Manager.
func NewManager() *Manager {
	return &Manager{sessions: make(map[SpecHash]*sessionState)}
}

// Open returns a Session on the state interned under spec's hash,
// creating it on first use. The spec must carry a non-empty Key — the
// canonical model name that makes the hash meaningful across callers;
// anonymous specs belong in NewSession. cfg is private to the returned
// handle: two handles on one state may run with different workers,
// contexts, and stores.
func (mg *Manager) Open(spec Spec, cfg Config) (*Session, error) {
	if spec.Key == "" {
		return nil, errors.New("pipeline: Manager.Open needs a spec with a canonical Key; use NewSession for anonymous specs")
	}
	h := spec.Hash()
	mg.mu.Lock()
	st, ok := mg.sessions[h]
	if !ok {
		st = newSessionState(spec, h)
		mg.sessions[h] = st
	}
	mg.mu.Unlock()
	return &Session{st: st, cfg: cfg}, nil
}

// Len reports the number of interned session states.
func (mg *Manager) Len() int {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return len(mg.sessions)
}

// NewSession returns an ephemeral Session: same staging and single-flight
// semantics, but the state is private to the handle (and to copies of
// it), never interned. The core phase adapters use this so every legacy
// call keeps its build-per-call behavior.
func NewSession(spec Spec, cfg Config) *Session {
	return &Session{st: newSessionState(spec, spec.Hash()), cfg: cfg}
}

// Session is a handle on one spec's staged pipeline. Handles are cheap;
// the artifacts live in the shared state behind them. Methods are safe
// for concurrent use from any number of goroutines and handles.
type Session struct {
	st  *sessionState
	cfg Config
}

// SpecHash returns the content address of the session's spec.
func (s *Session) SpecHash() SpecHash { return s.st.hash }

// ctx is the session's cancellation context (possibly nil).
func (s *Session) ctx() context.Context { return s.cfg.Ctx }

// genOptions resolves the spec's generation options against the session
// Config (workers and context are scheduling-only fallbacks) and appends
// the measures' state predicates — exactly what the phase-2 entry points
// have always done before generating.
func (s *Session) genOptions() lts.GenerateOptions {
	g := s.st.spec.Gen
	if g.GenWorkers <= 0 {
		g.GenWorkers = s.cfg.Workers
	}
	if g.Ctx == nil {
		g.Ctx = s.cfg.Ctx
	}
	g.Predicates = append(append([]lts.StatePred(nil), g.Predicates...), measure.StatePreds(s.st.spec.Measures)...)
	if s.st.spec.Minimize && g.Fold == nil {
		// The minimizing generation path folds vanishing states eagerly,
		// observing exactly the labels the TRANS_REWARD measures need.
		g.Fold = &lts.FoldOptions{Observed: measure.ObservedMatcher(s.st.spec.Measures)}
	}
	return g
}

// solveOptions resolves the spec's solver options against the session
// Config: context and workers fall back to the Config when unset. Both
// are scheduling-only — results are bit-identical either way.
func (s *Session) solveOptions() ctmc.SolveOptions {
	so := s.st.spec.Solve
	if so.Ctx == nil {
		so.Ctx = s.cfg.Ctx
	}
	if so.Workers <= 0 {
		so.Workers = s.cfg.Workers
	}
	return so
}

// Model returns the session's elaborated model, elaborating the spec's
// architectural description on first use.
func (s *Session) Model() (*elab.Model, error) {
	return s.st.model.get(s.ctx(), "pipeline.elaborate", func() (*elab.Model, error) {
		spec := &s.st.spec
		if spec.Model != nil {
			return spec.Model, nil
		}
		if spec.Build == nil {
			return nil, errors.New("pipeline: spec supplies neither Model nor Build")
		}
		arch, err := spec.Build()
		if err != nil {
			return nil, err
		}
		return elab.Elaborate(arch)
	})
}

// GenModel returns the model the generation path explores: the full
// elaborated model, or its compositional quotient when the spec sets
// Minimize. The quotient is staged like every other artifact (lumped once
// per session state).
func (s *Session) GenModel() (*elab.Model, error) {
	if !s.st.spec.Minimize {
		return s.Model()
	}
	mm, err := s.minimized()
	if err != nil {
		return nil, err
	}
	return mm.m, nil
}

// MinimizeStats returns the per-instance reduction statistics of the
// session's compositional minimization, or nil when the spec does not set
// Minimize.
func (s *Session) MinimizeStats() (*compose.Stats, error) {
	if !s.st.spec.Minimize {
		return nil, nil
	}
	mm, err := s.minimized()
	if err != nil {
		return nil, err
	}
	return mm.st, nil
}

// minimized returns the staged quotient model.
func (s *Session) minimized() (minimized, error) {
	return s.st.minim.get(s.ctx(), "pipeline.minimize", func() (minimized, error) {
		m, err := s.Model()
		if err != nil {
			return minimized{}, err
		}
		g := s.genOptions()
		qm, st, err := compose.Minimize(m, compose.Options{Preds: g.Predicates})
		if err != nil {
			return minimized{}, err
		}
		return minimized{m: qm, st: st}, nil
	})
}

// LTS returns the session's generated state space, generating it on
// first use with the spec's options plus the measures' state predicates.
// With Minimize set, generation runs on the per-component quotient model
// with vanishing-state folding — the compositional-minimization path.
func (s *Session) LTS() (*lts.LTS, error) {
	return s.st.ltsS.get(s.ctx(), "pipeline.generate", func() (*lts.LTS, error) {
		m, err := s.GenModel()
		if err != nil {
			return nil, err
		}
		return lts.Generate(m, s.genOptions())
	})
}

// Chain returns the session's CTMC, built from the LTS on first use. The
// chain is shared by every handle on this state: callers must treat it
// as read-only — solve and transient queries are safe (the solve plan
// and Poisson caches are internally synchronized), but Rebind is not;
// rate sweeps go through Sweep, which rebinds private clones.
func (s *Session) Chain() (*ctmc.CTMC, error) {
	return s.st.chain.get(s.ctx(), "pipeline.build", func() (*ctmc.CTMC, error) {
		l, err := s.LTS()
		if err != nil {
			return nil, err
		}
		return ctmc.Build(l)
	})
}

// Phase1 checks noninterference of the session's (untimed) state space:
// the functional phase of the methodology. The verdict is not memoized —
// spec holds functions and is not hashable — but the expensive artifact,
// the LTS, is staged as usual.
func (s *Session) Phase1(spec noninterference.Spec) (*Phase1Report, error) {
	l, err := s.LTS()
	if err != nil {
		return nil, fmt.Errorf("pipeline: phase 1: %w", err)
	}
	res, err := noninterference.Check(l, spec)
	if err != nil {
		return nil, fmt.Errorf("pipeline: phase 1: %w", err)
	}
	return &Phase1Report{
		Result:      res,
		States:      l.NumStates,
		Transitions: l.NumTransitions(),
	}, nil
}

// Phase2 solves the session's CTMC at the model's built-in rates and
// evaluates the spec's measures exactly: the Markovian phase for one
// model. The report is staged (solved once per state) and, when the
// Config carries a Store, memoized under the spec's hash; callers always
// receive a private copy.
func (s *Session) Phase2() (*Phase2Report, error) {
	key := ResultKey{Spec: s.st.hash, Point: "default"}
	rep, err := s.st.phase2.get(s.ctx(), "pipeline.phase2", func() (*Phase2Report, error) {
		if s.cfg.Store != nil {
			if rep, ok := s.cfg.Store.Get(key); ok {
				return rep, nil
			}
		}
		l, err := s.LTS()
		if err != nil {
			return nil, err
		}
		chain, err := s.Chain()
		if err != nil {
			return nil, err
		}
		pi, trace, err := chain.SteadyStateTraced(s.solveOptions())
		if err != nil {
			return nil, err
		}
		values, err := measure.EvalAll(s.st.spec.Measures, chain, pi)
		if err != nil {
			return nil, err
		}
		rep := &Phase2Report{
			Values:    values,
			States:    l.NumStates,
			Tangible:  chain.N,
			Vanishing: chain.NumVanishing(),
			Trace:     trace,
		}
		if s.cfg.Store != nil {
			s.cfg.Store.Put(key, rep)
		}
		return rep, nil
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: phase 2: %w", err)
	}
	return rep.clone(), nil
}

// Phase3 simulates the session's model with the given duration overrides
// and estimates the spec's measures: the general phase. Workers and Ctx
// fall back to the session Config when the settings leave them unset.
func (s *Session) Phase3(dists map[sim.Activity]dist.Distribution, settings SimSettings) (*Phase3Report, error) {
	m, err := s.Model()
	if err != nil {
		return nil, fmt.Errorf("pipeline: phase 3: %w", err)
	}
	if settings.Workers <= 0 {
		settings.Workers = s.cfg.Workers
	}
	if settings.Ctx == nil {
		settings.Ctx = s.cfg.Ctx
	}
	res, err := sim.Run(sim.Config{
		Model:           m,
		Distributions:   dists,
		Measures:        s.st.spec.Measures,
		RunLength:       settings.RunLength,
		Warmup:          settings.Warmup,
		Replications:    settings.Replications,
		Seed:            settings.Seed,
		ConfidenceLevel: settings.ConfidenceLevel,
		Workers:         settings.Workers,
		Ctx:             settings.Ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: phase 3: %w", err)
	}
	return &Phase3Report{
		Estimates:    res.Estimates,
		Events:       res.Events,
		Replications: res.Replications,
	}, nil
}

// ValidateAgainst cross-validates the session's exact Markovian solution
// against a simulation of the same model (see Validate).
func (s *Session) ValidateAgainst(simulated *Phase3Report, relTolerance float64) (*ValidationReport, error) {
	exact, err := s.Phase2()
	if err != nil {
		return nil, err
	}
	return Validate(exact, simulated, relTolerance), nil
}
