// Package pipeline is the session/handle layer of the analysis pipeline:
// one content-addressed elaborate→generate→solve API that every
// experiment driver, CLI, and future service front-end runs through.
//
// A Session is a handle on the staged artifacts of one Spec — the
// elaborated model, the generated LTS, the built CTMC (with its cached
// structural solve plan), and the solved sweep anchors. Each stage is
// built lazily exactly once per session state (single-flight, context
// aware) and shared by every handle opened on the same SpecHash through a
// Manager, so overlapping requests collapse onto shared work instead of
// regenerating it. The phase entry points of internal/core are thin
// adapters over ephemeral sessions, which keeps their results
// bit-identical to the session path by construction.
package pipeline

import (
	"context"

	"repro/internal/ctmc"
)

// Config carries the per-caller environment a Session runs under: the
// scheduling knobs (workers, lane width), the cancellation context, and
// the result store. None of it participates in the SpecHash — results
// are bit-identical at any Config — so sessions opened with different
// Configs still share one set of staged artifacts. The extra fields
// (Solve, CheckpointDir, CheckpointResume) are conventions for the layers
// above: internal/experiments builds its specs and checkpoint paths from
// them, so one Config constructed from CLI flags configures the whole
// run.
type Config struct {
	// Workers bounds the concurrency of everything the session schedules:
	// sweep points in flight, the generation pool (when the spec leaves
	// GenWorkers unset), and simulation replications (when SimSettings
	// leaves Workers unset). 0 keeps each layer's own default. Results
	// are bit-identical at any value.
	Workers int
	// LaneWidth is the batched steady-state width of Session sweeps: 0
	// auto-selects DefaultLaneWidth, 1 forces the per-point path, any
	// other value is used as given. Results are bit-identical at any
	// value.
	LaneWidth int
	// Ctx cancels the session's work: generation polls it at BFS level
	// boundaries, solvers per iteration, sweeps at point boundaries, and
	// stage waiters while another caller builds. A cancellation surfaces
	// as a *fault.CanceledError and never poisons the session: the
	// interrupted stage is retried by the next caller. Nil disables
	// cancellation.
	Ctx context.Context
	// Solve is the base steady-state solver configuration the experiment
	// drivers copy into their specs (the golden tests force a sweep mode
	// through it). The session itself reads solver options from the Spec.
	Solve ctmc.SolveOptions
	// Minimize is the compositional-minimization policy the experiment
	// drivers copy into their specs (Spec.Minimize): lump each component
	// before composition and fold vanishing states during generation, so
	// the full product never materializes. Unlike the scheduling knobs it
	// is semantic once copied into a Spec — it changes the generated LTS
	// (never the measure values) and participates in the SpecHash there.
	// The session itself reads it from the Spec.
	Minimize bool
	// CheckpointDir, when non-empty, makes every experiment sweep
	// resumable: each sweep checkpoints to <dir>/<name>.ckpt and, when
	// CheckpointResume is set, replays completed points from an existing
	// file — bit-identical to an uninterrupted run.
	CheckpointDir    string
	CheckpointResume bool
	// Store, when non-nil, memoizes Phase2 reports content-addressed by
	// SpecHash + anchor + point, so repeated or overlapping grids return
	// cached results. Determinism makes the cache transparent: a hit
	// deep-equals the fresh solve it replaces.
	Store Store
}

// SimSettings tunes the simulation runs of the third phase.
type SimSettings struct {
	// RunLength is the measured horizon per replication.
	RunLength float64
	// Warmup is the discarded start-up time.
	Warmup float64
	// Replications is the number of runs (default 30, the paper's choice).
	Replications int
	// Seed seeds the master random stream.
	Seed uint64
	// ConfidenceLevel of the reported intervals (default 0.90).
	ConfidenceLevel float64
	// Workers bounds the concurrency of the experiment: the number of
	// simulation replications in flight (sim.Config.Workers) and, for the
	// sweep drivers in internal/experiments, the number of concurrent
	// sweep points. 0 falls back to the session Config's Workers. Results
	// are bit-identical at any worker count.
	Workers int
	// Ctx cancels the simulation (see sim.Config.Ctx); nil falls back to
	// the session Config's Ctx.
	Ctx context.Context
}
