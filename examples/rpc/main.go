// The complete rpc walkthrough of the paper: phase 1 catches the design
// flaw of the simplified model and produces the diagnostic formula of
// Sect. 3.1; the revised model passes; phase 2 compares the Markovian
// models with and without DPM across shutdown timeouts (Fig. 3, left);
// the general model is validated against the Markovian one (Fig. 5) and
// then simulated with its realistic deterministic/Gaussian durations
// (Fig. 3, right), exposing the bimodal behaviour and the
// counterproductive region near the mean idle time.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/noninterference"
	"repro/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Phase 1: functional transparency -----------------------------
	fmt.Println("Phase 1 — noninterference analysis")
	spec := noninterference.Spec{
		High: lts.LabelMatcherByNames(models.RPCHighLabels()...),
		Low:  lts.LabelMatcherByInstance("C"),
	}
	simplified, err := models.BuildRPCSimplified()
	if err != nil {
		return err
	}
	rep1, err := core.Phase1(simplified, spec, lts.GenerateOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("  simplified model: transparent=%t\n", rep1.Result.Transparent)
	if !rep1.Result.Transparent {
		fmt.Println("  the checker explains why (the client can wait forever):")
		fmt.Println("    " + rep1.Result.FormulaText)
	}

	p := models.DefaultRPCParams()
	p.Mode = models.Functional
	revised, err := models.BuildRPCRevised(p)
	if err != nil {
		return err
	}
	rep1b, err := core.Phase1(revised, spec, lts.GenerateOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("  revised model (timeouts + busy/idle notices): transparent=%t\n\n",
		rep1b.Result.Transparent)

	// --- Phase 2: Markovian comparison (Fig. 3 left) -------------------
	// One runner drives every sweep below: its Config is the injected
	// environment (workers, lane width, stores), here the defaults.
	study := experiments.NewRunner(pipeline.Config{})
	fmt.Println("Phase 2 — Markovian comparison (Fig. 3, left)")
	pts, err := study.Fig3Markov([]float64{0, 1, 5, 10, 25})
	if err != nil {
		return err
	}
	h, rows := experiments.Fig3Rows(pts)
	fmt.Println(experiments.FormatTable(h, rows))

	// --- Phase 3a: validation (Fig. 5) ---------------------------------
	fmt.Println("Phase 3 — validating the general model (Fig. 5)")
	val, err := study.Fig5Validation([]float64{5, 15},
		core.SimSettings{RunLength: 10000, Replications: 15})
	if err != nil {
		return err
	}
	h, rows = experiments.Fig5Rows(val)
	fmt.Println(experiments.FormatTable(h, rows))

	// --- Phase 3b: the realistic general model (Fig. 3 right) ----------
	fmt.Println("Phase 3 — general model with deterministic timings (Fig. 3, right)")
	gpts, err := study.Fig3General([]float64{0, 2, 5, 8, 10, 12, 15, 25},
		core.SimSettings{RunLength: 8000, Replications: 10})
	if err != nil {
		return err
	}
	h, rows = experiments.Fig3Rows(gpts)
	fmt.Println(experiments.FormatTable(h, rows))
	fmt.Println("note the knee near the mean idle period (~11.3 ms): below it the")
	fmt.Println("penalty is flat and energy grows with the timeout; just below the")
	fmt.Println("knee the DPM is counterproductive; above it the DPM has no effect.")
	return nil
}
