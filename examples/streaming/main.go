// The streaming walkthrough of the paper: phase 1 checks that the PSP
// power manager is transparent to the video client (Sect. 3.2); phase 2
// sweeps the awake period on the Markovian model (Fig. 4); phase 3
// simulates the general model with constant bit-rate video and real-time
// frame deadlines (Fig. 6), and prints the energy/miss trade-off
// underlying Fig. 8 — including the practical conclusion that a ~100 ms
// awake period saves most of the NIC energy at no perceptible cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One runner drives the whole walkthrough: its Config is the injected
	// environment (workers, lane width, stores), here the defaults.
	study := experiments.NewRunner(pipeline.Config{})
	fmt.Println("Phase 1 — noninterference analysis (Sect. 3.2)")
	res, err := study.StreamingNoninterference(experiments.Quick)
	if err != nil {
		return err
	}
	fmt.Printf("  streaming model (%d states): transparent=%t\n\n", res.States, res.Transparent)

	fmt.Println("Phase 2 — Markovian comparison (Fig. 4)")
	pts, err := study.Fig4Markov([]float64{10, 50, 100, 200, 400, 800}, experiments.Full)
	if err != nil {
		return err
	}
	h, rows := experiments.Fig4Rows(pts)
	fmt.Println(experiments.FormatTable(h, rows))

	fmt.Println("Phase 3 — general model: CBR video, deterministic PSP, deadlines (Fig. 6)")
	settings := core.SimSettings{RunLength: 120000, Warmup: 40000, Replications: 10}
	gpts, err := study.Fig6General([]float64{25, 50, 100, 200, 400, 800},
		experiments.Full, settings)
	if err != nil {
		return err
	}
	h, rows = experiments.Fig4Rows(gpts)
	fmt.Println(experiments.FormatTable(h, rows))

	// The practical conclusion of the paper.
	for _, pt := range gpts {
		if pt.Period == 100 {
			saving := 1 - pt.WithDPM.EnergyPerFrame/pt.NoDPM.EnergyPerFrame
			fmt.Printf("at a 100 ms awake period the NIC saves %.0f%% energy while the\n", saving*100)
			fmt.Printf("quality stays at %.3f (no-DPM: %.3f): the MAC-level DPM is\n",
				pt.WithDPM.Quality, pt.NoDPM.Quality)
			fmt.Println("transparent to the streaming client, as the paper concludes.")
		}
	}
	return nil
}
