// Quickstart: model a tiny producer/buffer/consumer system with the
// architectural description API, generate its state space, solve the
// underlying CTMC for two measures, and cross-check the solution with the
// discrete-event simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/aemilia"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/rates"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const capacity = 5

	// A bounded buffer with an integer fill-level parameter and guarded
	// branches, plus a passive monitor used by a state reward.
	buffer := aemilia.NewElemType("Buffer_Type",
		[]string{"put"}, []string{"get", "monitor_nonempty"},
		aemilia.NewBehavior("Buffer", []aemilia.Param{aemilia.IntParam("n")},
			aemilia.Ch(
				aemilia.When(expr.Bin(expr.OpLt, expr.Ref("n"), expr.Int(capacity)),
					aemilia.Pre("put", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpAdd, expr.Ref("n"), expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					aemilia.Pre("get", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpSub, expr.Ref("n"), expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					aemilia.Pre("monitor_nonempty", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Ref("n")))),
			)))
	producer := aemilia.NewElemType("Producer_Type", nil, []string{"put"},
		aemilia.NewBehavior("Produce", nil,
			aemilia.Pre("put", rates.ExpRate(2), aemilia.Invoke("Produce"))))
	consumer := aemilia.NewElemType("Consumer_Type", []string{"get"}, nil,
		aemilia.NewBehavior("Consume", nil,
			aemilia.Pre("get", rates.ExpRate(3), aemilia.Invoke("Consume"))))

	arch := aemilia.NewArchiType("Quickstart",
		[]*aemilia.ElemType{buffer, producer, consumer},
		[]*aemilia.Instance{
			aemilia.NewInstance("B", "Buffer_Type", expr.Int(0)),
			aemilia.NewInstance("P", "Producer_Type"),
			aemilia.NewInstance("C", "Consumer_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("P", "put", "B", "put"),
			aemilia.Attach("B", "get", "C", "get"),
		})

	// The textual form round-trips through the parser.
	fmt.Println(aemilia.Format(arch))

	measures := []measure.Measure{
		{Name: "utilization", Clauses: []measure.Clause{
			{Instance: "B", Action: "monitor_nonempty", Kind: measure.StateReward, Value: 1},
		}},
		{Name: "throughput", Clauses: []measure.Clause{
			{Instance: "C", Action: "get", Kind: measure.TransReward, Value: 1},
		}},
	}

	// Exact Markovian analysis.
	exact, err := core.Phase2(arch, measures, lts.GenerateOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("state space: %d states\n", exact.States)
	fmt.Printf("exact   utilization=%.6f throughput=%.6f\n",
		exact.Values["utilization"], exact.Values["throughput"])

	// Simulation of the same model (exponential durations).
	sim, err := core.Phase3(arch, nil, measures, core.SimSettings{
		RunLength: 5000, Warmup: 100, Replications: 10, Seed: 1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated utilization=%v throughput=%v\n",
		sim.Estimates["utilization"], sim.Estimates["throughput"])

	val := core.Validate(exact, sim, 0.05)
	fmt.Printf("cross-validation consistent: %t\n", val.Consistent)
	return nil
}
