// A classical security-flavoured noninterference example, showing that
// the machinery behind the DPM transparency check is the standard
// information-flow analysis: a shared service leaks one bit from a high
// user to a low user through contention, and the checker's distinguishing
// formula pinpoints the covert channel; serializing access through a
// per-user front-end removes it.
package main

import (
	"fmt"
	"log"

	"repro/internal/aemilia"
	"repro/internal/core"
	"repro/internal/lts"
	"repro/internal/noninterference"
	"repro/internal/rates"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// leakySystem: the high user can lock the shared resource; while locked,
// the low user's requests are refused — an observable effect of high
// activity (a 1-bit covert channel).
func leakySystem() (*aemilia.ArchiType, error) {
	u := rates.UntimedRate()
	resource := aemilia.NewElemType("Resource_Type",
		[]string{"lock", "unlock", "use"}, []string{"grant", "refuse"},
		aemilia.NewBehavior("Free", nil, aemilia.Ch(
			aemilia.Pre("use", u, aemilia.Pre("grant", u, aemilia.Invoke("Free"))),
			aemilia.Pre("lock", u, aemilia.Invoke("Locked")),
		)),
		aemilia.NewBehavior("Locked", nil, aemilia.Ch(
			aemilia.Pre("use", u, aemilia.Pre("refuse", u, aemilia.Invoke("Locked"))),
			aemilia.Pre("unlock", u, aemilia.Invoke("Free")),
		)),
	)
	lowUser := aemilia.NewElemType("Low_Type",
		[]string{"grant", "refuse"}, []string{"use"},
		aemilia.NewBehavior("L", nil,
			aemilia.Pre("use", u, aemilia.Ch(
				aemilia.Pre("grant", u, aemilia.Invoke("L")),
				aemilia.Pre("refuse", u, aemilia.Invoke("L")),
			))),
	)
	highUser := aemilia.NewElemType("High_Type", nil, []string{"lock", "unlock"},
		aemilia.NewBehavior("H", nil,
			aemilia.Pre("lock", u, aemilia.Pre("unlock", u, aemilia.Invoke("H")))),
	)
	a := aemilia.NewArchiType("Leaky",
		[]*aemilia.ElemType{resource, lowUser, highUser},
		[]*aemilia.Instance{
			aemilia.NewInstance("R", "Resource_Type"),
			aemilia.NewInstance("L", "Low_Type"),
			aemilia.NewInstance("H", "High_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("L", "use", "R", "use"),
			aemilia.Attach("R", "grant", "L", "grant"),
			aemilia.Attach("R", "refuse", "L", "refuse"),
			aemilia.Attach("H", "lock", "R", "lock"),
			aemilia.Attach("H", "unlock", "R", "unlock"),
		})
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// sealedSystem: the resource serves the low user identically whether or
// not the high user holds the lock — the lock only matters to an internal
// audit action, so nothing observable leaks.
func sealedSystem() (*aemilia.ArchiType, error) {
	u := rates.UntimedRate()
	resource := aemilia.NewElemType("Resource_Type",
		[]string{"lock", "unlock", "use"}, []string{"grant"},
		aemilia.NewBehavior("Free", nil, aemilia.Ch(
			aemilia.Pre("use", u, aemilia.Pre("grant", u, aemilia.Invoke("Free"))),
			aemilia.Pre("lock", u, aemilia.Invoke("Locked")),
		)),
		aemilia.NewBehavior("Locked", nil, aemilia.Ch(
			aemilia.Pre("use", u, aemilia.Pre("grant", u, aemilia.Invoke("Locked"))),
			aemilia.Pre("audit", u, aemilia.Invoke("Locked")),
			aemilia.Pre("unlock", u, aemilia.Invoke("Free")),
		)),
	)
	lowUser := aemilia.NewElemType("Low_Type",
		[]string{"grant"}, []string{"use"},
		aemilia.NewBehavior("L", nil,
			aemilia.Pre("use", u, aemilia.Pre("grant", u, aemilia.Invoke("L")))),
	)
	highUser := aemilia.NewElemType("High_Type", nil, []string{"lock", "unlock"},
		aemilia.NewBehavior("H", nil,
			aemilia.Pre("lock", u, aemilia.Pre("unlock", u, aemilia.Invoke("H")))),
	)
	a := aemilia.NewArchiType("Sealed",
		[]*aemilia.ElemType{resource, lowUser, highUser},
		[]*aemilia.Instance{
			aemilia.NewInstance("R", "Resource_Type"),
			aemilia.NewInstance("L", "Low_Type"),
			aemilia.NewInstance("H", "High_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("L", "use", "R", "use"),
			aemilia.Attach("R", "grant", "L", "grant"),
			aemilia.Attach("H", "lock", "R", "lock"),
			aemilia.Attach("H", "unlock", "R", "unlock"),
		})
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

func run() error {
	spec := noninterference.Spec{
		High: lts.LabelMatcherByInstance("H"),
		Low:  lts.LabelMatcherByInstance("L"),
	}

	leaky, err := leakySystem()
	if err != nil {
		return err
	}
	rep, err := core.Phase1(leaky, spec, lts.GenerateOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("leaky system: noninterference=%t\n", rep.Result.Transparent)
	if !rep.Result.Transparent {
		fmt.Println("covert channel witnessed by:")
		fmt.Println("  " + rep.Result.FormulaText)
	}

	sealed, err := sealedSystem()
	if err != nil {
		return err
	}
	rep, err = core.Phase1(sealed, spec, lts.GenerateOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("sealed system: noninterference=%t\n", rep.Result.Transparent)
	return nil
}
