// Multicast: demonstrates the AND (broadcast) and OR (alternative)
// interaction multiplicities — a video source broadcasting frames to a
// growing set of subscribers, plus a shared helper serving them one at a
// time. The Markovian analysis shows how the broadcast rate degrades as
// the slowest subscriber gates the group.
package main

import (
	"fmt"
	"log"

	"repro/internal/aemilia"
	"repro/internal/core"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/rates"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildMulticast returns a source broadcasting to n subscribers; each
// subscriber must also fetch a licence from a shared OR server before it
// can digest the next frame.
func buildMulticast(n int) (*aemilia.ArchiType, error) {
	source := aemilia.NewElemTypePorts("Source_Type",
		nil, []aemilia.Port{aemilia.AndPort("publish")},
		aemilia.NewBehavior("Produce", nil,
			aemilia.Pre("encode", rates.ExpRate(2),
				aemilia.Pre("publish", rates.Inf(1, 1), aemilia.Invoke("Produce")))))
	subscriber := aemilia.NewElemTypePorts("Sub_Type",
		[]aemilia.Port{aemilia.UniPort("hear"), aemilia.UniPort("licence")}, nil,
		aemilia.NewBehavior("Idle", nil,
			aemilia.Pre("hear", rates.PassiveRate(), aemilia.Invoke("Fetching"))),
		aemilia.NewBehavior("Fetching", nil,
			aemilia.Pre("licence", rates.PassiveRate(), aemilia.Invoke("Digesting"))),
		aemilia.NewBehavior("Digesting", nil,
			aemilia.Pre("digest", rates.ExpRate(4), aemilia.Invoke("Idle"))))
	licenser := aemilia.NewElemTypePorts("Lic_Type",
		nil, []aemilia.Port{aemilia.OrPort("grant")},
		aemilia.NewBehavior("L", nil,
			aemilia.Pre("grant", rates.ExpRate(8), aemilia.Invoke("L"))))

	elems := []*aemilia.ElemType{source, subscriber, licenser}
	insts := []*aemilia.Instance{
		aemilia.NewInstance("SRC", "Source_Type"),
		aemilia.NewInstance("LIC", "Lic_Type"),
	}
	var atts []aemilia.Attachment
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("SUB%d", i+1)
		insts = append(insts, aemilia.NewInstance(name, "Sub_Type"))
		atts = append(atts,
			aemilia.Attach("SRC", "publish", name, "hear"),
			aemilia.Attach("LIC", "grant", name, "licence"),
		)
	}
	a := aemilia.NewArchiType("Multicast", elems, insts, atts)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

func run() error {
	fmt.Println("subscribers  broadcast_rate  states")
	for n := 1; n <= 4; n++ {
		arch, err := buildMulticast(n)
		if err != nil {
			return err
		}
		measures := []measure.Measure{
			{Name: "broadcasts", Clauses: []measure.Clause{
				{Instance: "SRC", Action: "publish", Kind: measure.TransReward, Value: 1},
			}},
		}
		rep, err := core.Phase2(arch, measures, lts.GenerateOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("%11d  %14.5f  %6d\n", n, rep.Values["broadcasts"], rep.States)
	}
	fmt.Println()
	fmt.Println("every subscriber must hear each frame (AND broadcast), so the")
	fmt.Println("group is gated by its slowest member: the broadcast rate falls")
	fmt.Println("as subscribers are added, while the OR licence server serializes")
	fmt.Println("their fetches.")
	// Show the textual form of the 2-subscriber system: the multiplicity
	// declarations round-trip through the parser.
	arch, err := buildMulticast(2)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(aemilia.Format(arch))
	return nil
}
