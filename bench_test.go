package repro

// One benchmark per table/figure of the paper's evaluation, plus ablation
// benchmarks for the substrate layers DESIGN.md calls out. Each figure
// benchmark runs its experiment at a reduced but representative setting;
// the cmd/ tools run the full sweeps.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/bisim"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/experiments"
	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/rates"
	"repro/internal/sim"
)

// benchRunner builds a fresh experiment runner with a default Config —
// one per op, matching the cold-start behaviour the deprecated
// package-level experiments entry points had, so the figure benchmarks
// keep measuring the full pipeline rather than a staged session.
func benchRunner() *experiments.Runner {
	return experiments.NewRunner(pipeline.Config{})
}

// --- Sect. 3: noninterference results ---

func BenchmarkNoninterferenceRPCSimplified(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchRunner().RPCNoninterferenceSimplified()
		if err != nil {
			b.Fatal(err)
		}
		if res.Transparent {
			b.Fatal("expected interference")
		}
	}
}

func BenchmarkNoninterferenceRPCRevised(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchRunner().RPCNoninterferenceRevised()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Transparent {
			b.Fatal("expected transparency")
		}
	}
}

func BenchmarkNoninterferenceStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchRunner().StreamingNoninterference(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Transparent {
			b.Fatal("expected transparency")
		}
	}
}

// --- Fig. 3: rpc performance comparison ---

func BenchmarkFig3Markov(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig3Markov([]float64{0.5, 5, 25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3General(b *testing.B) {
	settings := core.SimSettings{RunLength: 2000, Replications: 4}
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig3General([]float64{2, 10, 20}, settings); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 4: streaming Markovian comparison ---

func BenchmarkFig4Markov(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig4Markov([]float64{50, 400}, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 5: validation of the general rpc model ---

func BenchmarkFig5Validation(b *testing.B) {
	settings := core.SimSettings{RunLength: 2000, Replications: 5}
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig5Validation([]float64{5}, settings); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6: general streaming model ---

func BenchmarkFig6General(b *testing.B) {
	settings := core.SimSettings{RunLength: 20000, Warmup: 5000, Replications: 3}
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig6General([]float64{100}, experiments.Quick, settings); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 7/8: trade-off curves ---

func BenchmarkFig7Tradeoff(b *testing.B) {
	settings := core.SimSettings{RunLength: 2000, Replications: 4}
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig7Tradeoff([]float64{1, 10, 20}, settings); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Tradeoff(b *testing.B) {
	settings := core.SimSettings{RunLength: 20000, Warmup: 5000, Replications: 3}
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig8Tradeoff([]float64{100, 400}, experiments.Quick, settings); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: substrate layers ---

// BenchmarkLTSGeneration measures explicit state-space generation on the
// full-size Markovian streaming model (~50k states).
func BenchmarkLTSGeneration(b *testing.B) {
	p := models.DefaultStreamingParams()
	a, err := models.BuildStreaming(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lts.Generate(m, lts.GenerateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures allocation behaviour of explicit state-space
// generation on the full-size Markovian streaming model: the interned
// state-space representation is judged by B/op and allocs/op here
// (results/BENCH_statespace.json records the before/after numbers).
func BenchmarkGenerate(b *testing.B) {
	p := models.DefaultStreamingParams()
	a, err := models.BuildStreaming(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lts.Generate(m, lts.GenerateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeakBisim measures the weak-bisimulation check behind the
// streaming noninterference analysis (tau-SCC condensation + signature
// refinement).
func BenchmarkWeakBisim(b *testing.B) {
	p := models.DefaultStreamingParams()
	p.Mode = models.Functional
	p.APCapacity, p.ClientCapacity = 2, 2
	a, err := models.BuildStreaming(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	high := lts.LabelMatcherByNames(models.StreamingHighLabels()...)
	low := lts.LabelMatcherByInstance("C")
	notLow := func(s string) bool { return !low(s) }
	hidden := lts.Hide(l, notLow)
	restricted := lts.Hide(lts.Restrict(l, high), notLow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := bisim.Equivalent(hidden, restricted, bisim.Weak); !ok {
			b.Fatal("expected equivalence")
		}
	}
}

// BenchmarkCTMCSolve measures chain extraction plus steady-state solution
// on the Markovian rpc model.
func BenchmarkCTMCSolve(b *testing.B) {
	p := models.DefaultRPCParams()
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain, err := ctmc.Build(l)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := chain.SteadyState(ctmc.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorEvents measures raw GSMP event throughput on the
// general rpc model.
func BenchmarkSimulatorEvents(b *testing.B) {
	p := models.DefaultRPCParams()
	p.ShutdownTimeout = 5
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	dists := models.RPCGeneralDistributions(p)
	measures := models.RPCMeasures(p)
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Model:         m,
			Distributions: dists,
			Measures:      measures,
			RunLength:     1000,
			Replications:  1,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkPolicyComparison runs the DPM-policy ablation (trivial vs
// timeout vs predictive vs none) on the Markovian rpc model.
func BenchmarkPolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().PolicyComparison(5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatteryLifetime runs the transient battery-lifetime extension
// (uniformization-based cumulative rewards) across all policies.
func BenchmarkBatteryLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().BatteryLifetime(1000, 5, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStartupTransient runs the streaming start-up transient
// extension (incremental uniformization on the Quick-scale chain).
func BenchmarkStartupTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().StreamingStartupTransient(
			[]float64{100, 500, 2000}, 100, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel experiment engine: sequential vs parallel ---
//
// The pairs below run the same sweep at Workers=1 and
// Workers=runtime.NumCPU(); by the engine's determinism contract both
// produce bit-identical results, so the delta is pure wall-clock. On a
// single-core machine the pairs coincide (the pool degenerates to one
// worker); results/BENCH_parallel.json records measured numbers with the
// core count.

func benchFig3General(b *testing.B, workers int) {
	settings := core.SimSettings{RunLength: 2000, Replications: 8, Workers: workers}
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig3General([]float64{2, 5, 10, 15, 20, 25}, settings); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3GeneralSequential(b *testing.B) { benchFig3General(b, 1) }
func BenchmarkFig3GeneralParallel(b *testing.B)   { benchFig3General(b, runtime.NumCPU()) }

func benchFig4Markov(b *testing.B, workers int) {
	cfg := pipeline.Config{Workers: workers}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewRunner(cfg).Fig4Markov([]float64{50, 100, 200, 400, 800}, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4MarkovSequential(b *testing.B) { benchFig4Markov(b, 1) }
func BenchmarkFig4MarkovParallel(b *testing.B)   { benchFig4Markov(b, runtime.NumCPU()) }

func benchSimReplications(b *testing.B, workers int) {
	p := models.DefaultRPCParams()
	p.ShutdownTimeout = 5
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	dists := models.RPCGeneralDistributions(p)
	measures := models.RPCMeasures(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{
			Model:         m,
			Distributions: dists,
			Measures:      measures,
			RunLength:     1000,
			Replications:  8,
			Seed:          uint64(i + 1),
			Workers:       workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimReplicationsSequential(b *testing.B) { benchSimReplications(b, 1) }
func BenchmarkSimReplicationsParallel(b *testing.B)   { benchSimReplications(b, runtime.NumCPU()) }

// --- Parallel generation and parallel solve: sequential vs parallel ---
//
// The remaining single-threaded hot paths of the analytic pipeline,
// benchmarked at GenWorkers/Workers = 1 vs NumCPU on the full-size
// streaming model. Outputs are bit-identical at any worker count (the
// level-synchronized merge and the fixed Jacobi summation order), so the
// delta is pure wall-clock; results/BENCH_genparallel.json records the
// measured ratios with the core count.

func benchGenerate(b *testing.B, workers int) {
	a, err := models.BuildStreaming(models.DefaultStreamingParams())
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lts.Generate(m, lts.GenerateOptions{GenWorkers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSequential(b *testing.B) { benchGenerate(b, 1) }
func BenchmarkGenerateParallel(b *testing.B)   { benchGenerate(b, runtime.NumCPU()) }

// streamingSteadyChain builds the full-size streaming chain once; its
// recurrent component (1155 tangible states) sits above the Jacobi
// threshold, so it exercises the parallel sweep in auto mode too.
func streamingSteadyChain(b *testing.B) *ctmc.CTMC {
	b.Helper()
	a, err := models.BuildStreaming(models.DefaultStreamingParams())
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := ctmc.Build(l)
	if err != nil {
		b.Fatal(err)
	}
	return chain
}

func benchSteadyState(b *testing.B, opts ctmc.SolveOptions) {
	chain := streamingSteadyChain(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chain.SteadyState(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateGaussSeidel(b *testing.B) {
	benchSteadyState(b, ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel})
}

func BenchmarkSteadyStateJacobiSequential(b *testing.B) {
	benchSteadyState(b, ctmc.SolveOptions{Sweep: ctmc.SweepJacobi, Workers: 1})
}

func BenchmarkSteadyStateJacobiParallel(b *testing.B) {
	benchSteadyState(b, ctmc.SolveOptions{Sweep: ctmc.SweepJacobi, Workers: runtime.NumCPU()})
}

// --- Rate-parametric sweep: per-point fresh pipeline vs generate-once rebind ---
//
// The Fig. 3 timeout sweep, measured both ways over the same six points:
// Fresh runs the full generate+build+solve pipeline per point (the
// pre-sweep-engine behaviour), Rebind generates and builds once, rewrites
// the rates per point and warm-starts the solver from the anchor solution
// (core.Phase2Sweep). Both iterate the same number of points, so the
// ns/op ratio is the per-point speedup recorded in
// results/BENCH_sweepreuse.json. Elaboration is outside the timer in both
// cases: the delta under test is the phase-2 pipeline, not the AST walk.

var sweepReuseTimeouts = []float64{0.5, 1, 2, 5, 10, 25}

func BenchmarkSweepReuseFresh(b *testing.B) {
	ms := make([]*elab.Model, len(sweepReuseTimeouts))
	for i, T := range sweepReuseTimeouts {
		p := models.DefaultRPCParams()
		p.ShutdownTimeout = T
		a, err := models.BuildRPCRevised(p)
		if err != nil {
			b.Fatal(err)
		}
		if ms[i], err = elab.Elaborate(a); err != nil {
			b.Fatal(err)
		}
	}
	measures := models.RPCMeasures(models.DefaultRPCParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			if _, err := core.Phase2ModelSolve(m, measures, lts.GenerateOptions{}, ctmc.SolveOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Batched multi-lane solve: per-point vs cached-plan vs batched ---
//
// A 16-point rate-parametric sweep solved three ways over the same
// prebuilt chain, all warm-started from the same anchor solution (solved
// outside the timer): PerPoint invalidates the structural plan before
// every solve, re-paying the per-point SCC/reachability analysis exactly
// as the pre-batching engine did; CachedPoint keeps the shared plan but
// still solves one point at a time; Batched hands the points to
// SolveBatch in 8-lane chunks, one CSR pass feeding all lanes. All three
// produce bit-identical solutions (pinned by the ctmc and core property
// tests), so the ns/op ratios are pure solve-path speedups;
// results/BENCH_batchsolve.json records PerPoint/Batched per model.

const batchSolveLanes = 8

func batchSolveRPCChain(b *testing.B) (*ctmc.CTMC, [][]float64) {
	b.Helper()
	p := models.DefaultRPCParams()
	p.ParametricTimeout = true
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := ctmc.Build(l)
	if err != nil {
		b.Fatal(err)
	}
	timeouts := []float64{0.5, 1, 1.5, 2, 3, 4, 5, 6, 7.5, 9, 10, 12.5, 15, 17.5, 20, 25}
	points := make([][]float64, len(timeouts))
	for i, T := range timeouts {
		points[i] = []float64{1 / T}
	}
	return chain, points
}

func batchSolveStreamingChain(b *testing.B) (*ctmc.CTMC, [][]float64) {
	b.Helper()
	chain := streamingSteadyChainParametric(b)
	periods := []float64{5, 10, 25, 50, 75, 100, 150, 200, 250, 300, 400, 500, 600, 650, 700, 800}
	points := make([][]float64, len(periods))
	for i, P := range periods {
		points[i] = []float64{1 / P}
	}
	return chain, points
}

// streamingSteadyChainParametric builds the full-size streaming chain
// with the PSP wakeup rate left parametric.
func streamingSteadyChainParametric(b *testing.B) *ctmc.CTMC {
	b.Helper()
	p := models.DefaultStreamingParams()
	p.ParametricPeriod = true
	a, err := models.BuildStreaming(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := ctmc.Build(l)
	if err != nil {
		b.Fatal(err)
	}
	return chain
}

// batchSolveAnchor solves the first sweep point cold, exactly as
// core.Phase2Sweep does before warm-starting the rest.
func batchSolveAnchor(b *testing.B, chain *ctmc.CTMC, points [][]float64) []float64 {
	b.Helper()
	if err := chain.Rebind(points[0]); err != nil {
		b.Fatal(err)
	}
	anchor, err := chain.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return anchor
}

func benchBatchSolvePerPoint(b *testing.B, chain *ctmc.CTMC, points [][]float64, invalidate bool) {
	anchor := batchSolveAnchor(b, chain, points)
	opts := ctmc.SolveOptions{WarmStart: anchor}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pt := range points {
			if invalidate {
				chain.InvalidatePlan()
			}
			if err := chain.Rebind(pt); err != nil {
				b.Fatal(err)
			}
			if _, err := chain.SteadyState(opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchBatchSolveBatched(b *testing.B, chain *ctmc.CTMC, points [][]float64) {
	anchor := batchSolveAnchor(b, chain, points)
	opts := ctmc.BatchOptions{Solve: ctmc.SolveOptions{WarmStart: anchor}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(points); off += batchSolveLanes {
			end := min(off+batchSolveLanes, len(points))
			if _, err := chain.SolveBatch(points[off:end], opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatchSolveRPCPerPoint(b *testing.B) {
	chain, points := batchSolveRPCChain(b)
	benchBatchSolvePerPoint(b, chain, points, true)
}

func BenchmarkBatchSolveRPCCachedPoint(b *testing.B) {
	chain, points := batchSolveRPCChain(b)
	benchBatchSolvePerPoint(b, chain, points, false)
}

func BenchmarkBatchSolveRPCBatched(b *testing.B) {
	chain, points := batchSolveRPCChain(b)
	benchBatchSolveBatched(b, chain, points)
}

func BenchmarkBatchSolveStreamingPerPoint(b *testing.B) {
	chain, points := batchSolveStreamingChain(b)
	benchBatchSolvePerPoint(b, chain, points, true)
}

func BenchmarkBatchSolveStreamingCachedPoint(b *testing.B) {
	chain, points := batchSolveStreamingChain(b)
	benchBatchSolvePerPoint(b, chain, points, false)
}

func BenchmarkBatchSolveStreamingBatched(b *testing.B) {
	chain, points := batchSolveStreamingChain(b)
	benchBatchSolveBatched(b, chain, points)
}

func BenchmarkSweepReuseRebind(b *testing.B) {
	p := models.DefaultRPCParams()
	p.ParametricTimeout = true
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	measures := models.RPCMeasures(p)
	points := make([][]float64, len(sweepReuseTimeouts))
	for i, T := range sweepReuseTimeouts {
		points[i] = []float64{1 / T}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Phase2Sweep(m, measures, points, core.SweepOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Session/handle pipeline: cold vs staged-warm vs store-hit ---
//
// The same Phase2 question asked three ways through the session layer.
// Cold runs a fresh ephemeral session per op: build, elaborate, generate,
// solve — the full pipeline, what a one-shot CLI invocation pays. Warm
// re-opens a handle on an already-staged Manager session per op: the spec
// is re-hashed and interned onto the existing state, so the op costs one
// content hash plus a report clone — what the second experiment touching
// the same model pays. CacheHit starts from a cold session state but a
// populated ResultCache: the op is one content hash plus a store lookup
// and clone — what a re-run with a persistent store would pay. All three
// return deep-equal reports (pinned by the pipeline tests), so the ns/op
// ratios in results/BENCH_pipeline.json are pure reuse savings.

func pipelineRPCSpec() pipeline.Spec {
	p := models.DefaultRPCParams()
	return pipeline.Spec{
		Key:      fmt.Sprintf("rpc:%#v", p),
		Build:    func() (*aemilia.ArchiType, error) { return models.BuildRPCRevised(p) },
		Measures: models.RPCMeasures(p),
	}
}

func pipelineStreamingSpec() pipeline.Spec {
	p := models.DefaultStreamingParams()
	return pipeline.Spec{
		Key:      fmt.Sprintf("streaming:%#v", p),
		Build:    func() (*aemilia.ArchiType, error) { return models.BuildStreaming(p) },
		Measures: models.StreamingMeasures(p),
	}
}

func benchPipelineCold(b *testing.B, spec pipeline.Spec) {
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.NewSession(spec, pipeline.Config{}).Phase2(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPipelineWarm(b *testing.B, spec pipeline.Spec) {
	mgr := pipeline.NewManager()
	s, err := mgr.Open(spec, pipeline.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Phase2(); err != nil { // stage everything outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := mgr.Open(spec, pipeline.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Phase2(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPipelineCacheHit(b *testing.B, spec pipeline.Spec) {
	store := pipeline.NewMemoryStore()
	if _, err := pipeline.NewSession(spec, pipeline.Config{Store: store}).Phase2(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A cold session state per op: only the store can answer.
		if _, err := pipeline.NewSession(spec, pipeline.Config{Store: store}).Phase2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineRPCCold(b *testing.B)     { benchPipelineCold(b, pipelineRPCSpec()) }
func BenchmarkPipelineRPCWarm(b *testing.B)     { benchPipelineWarm(b, pipelineRPCSpec()) }
func BenchmarkPipelineRPCCacheHit(b *testing.B) { benchPipelineCacheHit(b, pipelineRPCSpec()) }

func BenchmarkPipelineStreamingCold(b *testing.B) { benchPipelineCold(b, pipelineStreamingSpec()) }
func BenchmarkPipelineStreamingWarm(b *testing.B) { benchPipelineWarm(b, pipelineStreamingSpec()) }
func BenchmarkPipelineStreamingCacheHit(b *testing.B) {
	benchPipelineCacheHit(b, pipelineStreamingSpec())
}

// --- Multilevel (IAD) solver: iteration counts where the point sweeps crawl ---
//
// The ε-coupled two-cluster chain is the canonical near-completely-
// decomposable workload: two birth-death clusters bridged by a single
// ε-rate edge pair, so the point sweeps need ~1/ε iterations to move
// mass between the clusters while the IAD outer loop solves that mode
// exactly once per cycle. Every solver benchmark reports iters/op (the
// fine-level sweep count to convergence) next to ns/op: on the 1-CPU
// bench box iteration count is the lever, and it is noise-free.

// benchEpsChain builds the ε chain of the multilevel tests: 2×40 states,
// distinct cluster rates, bridge rate = slot 1.
func benchEpsChain(b *testing.B, eps float64) *ctmc.CTMC {
	b.Helper()
	const cluster = 40
	n := 2 * cluster
	l := lts.New(n)
	l.Initial = 0
	fwd := l.LabelIndex("fwd")
	back := l.LabelIndex("back")
	for j := 0; j+1 < n; j++ {
		if j+1 == cluster {
			l.AddTransition(j, j+1, fwd, rates.ExpSlot(1, eps))
			l.AddTransition(j+1, j, back, rates.ExpSlot(1, eps))
			continue
		}
		f, bk := 3.0, 2.0
		if j+1 > cluster {
			f, bk = 2.6, 1.7
		}
		l.AddTransition(j, j+1, fwd, rates.ExpRate(f))
		l.AddTransition(j+1, j, back, rates.ExpRate(bk))
	}
	chain, err := ctmc.Build(l)
	if err != nil {
		b.Fatal(err)
	}
	if err := chain.Rebind([]float64{eps}); err != nil {
		b.Fatal(err)
	}
	return chain
}

// benchSolveIters measures a solo solve and reports the fine-level
// iteration count of the converged attempt.
func benchSolveIters(b *testing.B, chain *ctmc.CTMC, opts ctmc.SolveOptions) {
	b.Helper()
	var iters, cycles int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, trace, err := chain.SteadyStateTraced(opts)
		if err != nil {
			b.Fatal(err)
		}
		last := trace.Attempts[len(trace.Attempts)-1]
		iters, cycles = last.Iterations, last.Cycles
	}
	b.ReportMetric(float64(iters), "iters/op")
	if cycles > 0 {
		b.ReportMetric(float64(cycles), "cycles/op")
	}
}

// The ε benchmarks run at ε = 1e-3 and tolerance 1e-10: hard enough
// that the point sweeps grind for tens of thousands of iterations, easy
// enough that they still converge within the default budget (so every
// scheme measures work-to-converge, not work-to-give-up; the sweeps'
// relative residual cannot reach 1e-12 on this chain's stiff geometric
// profile at all).
const (
	benchEps    = 1e-3
	benchEpsTol = 1e-10
)

func BenchmarkMultilevelEpsGaussSeidel(b *testing.B) {
	benchSolveIters(b, benchEpsChain(b, benchEps),
		ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel, Tolerance: benchEpsTol})
}

func BenchmarkMultilevelEpsJacobi(b *testing.B) {
	// Damped Jacobi needs ~690k sweeps here — far beyond the default
	// budget; the raised ceiling lets the benchmark measure the real
	// count instead of a give-up.
	benchSolveIters(b, benchEpsChain(b, benchEps),
		ctmc.SolveOptions{Sweep: ctmc.SweepJacobi, Workers: 1, Tolerance: benchEpsTol,
			MaxIterations: 4000000})
}

func BenchmarkMultilevelEpsMultilevel(b *testing.B) {
	benchSolveIters(b, benchEpsChain(b, benchEps),
		ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel, Tolerance: benchEpsTol})
}

func BenchmarkMultilevelRPCGaussSeidel(b *testing.B) {
	chain, points := batchSolveRPCChain(b)
	if err := chain.Rebind(points[0]); err != nil {
		b.Fatal(err)
	}
	benchSolveIters(b, chain, ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel})
}

func BenchmarkMultilevelRPCMultilevel(b *testing.B) {
	chain, points := batchSolveRPCChain(b)
	if err := chain.Rebind(points[0]); err != nil {
		b.Fatal(err)
	}
	benchSolveIters(b, chain, ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel})
}

func BenchmarkMultilevelStreamingGaussSeidel(b *testing.B) {
	benchSolveIters(b, streamingSteadyChain(b), ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel})
}

func BenchmarkMultilevelStreamingMultilevel(b *testing.B) {
	benchSolveIters(b, streamingSteadyChain(b), ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel})
}

// The batched ε benchmarks sweep 8 couplings spanning one decade in one
// SolveBatch call: the slowest lane needs ~10× the iterations of the
// fastest, so the batched point sweep grinds with mostly-dead lanes —
// the equalized multilevel cycles attack exactly that skew.
func benchEpsPoints() [][]float64 {
	pts := make([][]float64, 0, 8)
	for _, eps := range []float64{1e-3, 7e-4, 5e-4, 3e-4, 2e-4, 1.5e-4, 1.2e-4, 1e-4} {
		pts = append(pts, []float64{eps})
	}
	return pts
}

func benchEpsBatched(b *testing.B, sweep ctmc.Sweep) {
	chain := benchEpsChain(b, 1e-3)
	points := benchEpsPoints()
	// The slowest lane (ε = 1e-4) needs ~1.8M point sweeps; the raised
	// ceiling keeps the batched Gauss-Seidel reference converging.
	opts := ctmc.BatchOptions{Solve: ctmc.SolveOptions{Sweep: sweep, Tolerance: benchEpsTol,
		MaxIterations: 4000000}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chain.SolveBatch(points, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultilevelEpsBatchedGaussSeidel(b *testing.B) {
	benchEpsBatched(b, ctmc.SweepGaussSeidel)
}

func BenchmarkMultilevelEpsBatchedMultilevel(b *testing.B) {
	benchEpsBatched(b, ctmc.SweepMultilevel)
}

// --- Ablation: compositional minimization (compose quotient + fold) ---

// benchComposeModel elaborates one of the paper models for the Compose
// bench family. scale multiplies the streaming buffer capacities, so
// scale=10 is the 10×-buffer variant whose full product is the stress
// case compositional minimization exists for.
func benchComposeModel(b *testing.B, name string, scale int64) *elab.Model {
	b.Helper()
	var (
		a   *aemilia.ArchiType
		err error
	)
	switch name {
	case "rpc":
		a, err = models.BuildRPCRevised(models.DefaultRPCParams())
	case "streaming":
		p := models.DefaultStreamingParams()
		p.APCapacity *= scale
		p.ClientCapacity *= scale
		a, err = models.BuildStreaming(p)
	default:
		b.Fatalf("unknown compose bench model %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchComposeFull measures the baseline: generating the plain parallel
// product. The composed state/edge counts are reported as metrics so
// bench_compare.sh -C can record the reduction next to the wall-clock
// delta.
func benchComposeFull(b *testing.B, name string, scale int64, maxStates int) {
	m := benchComposeModel(b, name, scale)
	b.ReportAllocs()
	b.ResetTimer()
	var states, edges int
	for i := 0; i < b.N; i++ {
		l, err := lts.Generate(m, lts.GenerateOptions{MaxStates: maxStates})
		if err != nil {
			b.Fatal(err)
		}
		states, edges = l.NumStates, l.NumTransitions()
	}
	b.ReportMetric(float64(states), "states/op")
	b.ReportMetric(float64(edges), "edges/op")
}

// benchComposeMinimized measures the replacement path end to end: lump
// every component, then generate from the quotient with vanishing-state
// folding — the work an analysis actually does instead of the full
// composition.
func benchComposeMinimized(b *testing.B, name string, scale int64, maxStates int) {
	m := benchComposeModel(b, name, scale)
	b.ReportAllocs()
	b.ResetTimer()
	var states, edges int
	for i := 0; i < b.N; i++ {
		qm, _, err := compose.Minimize(m, compose.Options{})
		if err != nil {
			b.Fatal(err)
		}
		l, err := lts.Generate(qm, lts.GenerateOptions{MaxStates: maxStates, Fold: &lts.FoldOptions{}})
		if err != nil {
			b.Fatal(err)
		}
		states, edges = l.NumStates, l.NumTransitions()
	}
	b.ReportMetric(float64(states), "states/op")
	b.ReportMetric(float64(edges), "edges/op")
}

func BenchmarkComposeRPCFull(b *testing.B)      { benchComposeFull(b, "rpc", 1, 0) }
func BenchmarkComposeRPCMinimized(b *testing.B) { benchComposeMinimized(b, "rpc", 1, 0) }

func BenchmarkComposeStreamingFull(b *testing.B)      { benchComposeFull(b, "streaming", 1, 0) }
func BenchmarkComposeStreamingMinimized(b *testing.B) { benchComposeMinimized(b, "streaming", 1, 0) }

// The 10×-buffer variant (AP and client buffers at 100 frames) is the
// case where the full product no longer fits the default generation
// budget: its bound must be raised to ~8M states, while the minimized
// path stays comfortably inside the default.
func BenchmarkComposeStreaming10xFull(b *testing.B) {
	skipIfShort(b)
	benchComposeFull(b, "streaming", 10, 8_000_000)
}

func BenchmarkComposeStreaming10xMinimized(b *testing.B) {
	skipIfShort(b)
	benchComposeMinimized(b, "streaming", 10, 8_000_000)
}

// skipIfShort keeps the 10×-buffer pair out of -short smoke runs: one
// full-product generation alone is minutes of work, which is bench_compare
// -C territory, not a compile-and-panic check.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping multi-minute composition bench in -short mode")
	}
}
