package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// specPath resolves a file in the repository's specs directory.
func specPath(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "specs", name)
	if _, err := os.Stat(p); err != nil {
		t.Skipf("spec %s not available: %v", name, err)
	}
	return p
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"check", "model.aem"},                 // missing -high/-low
		{"check", "-high", "DPM", "model.aem"}, // missing -low
		{"solve", "model.aem"},                 // missing -measures
		{"sim", "model.aem"},                   // missing -measures
		{"equiv", "-relation", "weak", "only-one"},   // needs two files
		{"minimize", "-relation", "nope", "x.aem"},   // unknown relation
		{"lts", "a.aem", "b.aem"},                    // too many positionals
		{"lts", "definitely-not-existing-file.aem"},  // unreadable
		{"equiv", "-relation", "nope", "a.x", "b.x"}, // unknown relation (after load fails first)
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunLTSAndExports(t *testing.T) {
	model := specPath(t, "rpc_simplified.aem")
	dir := t.TempDir()
	dot := filepath.Join(dir, "out.dot")
	aut := filepath.Join(dir, "out.aut")
	if err := run([]string{"lts", "-dot", dot, "-aut", aut, model}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{dot, aut} {
		data, err := os.ReadFile(p)
		if err != nil || len(data) == 0 {
			t.Errorf("export %s missing or empty: %v", p, err)
		}
	}
	autText, _ := os.ReadFile(aut)
	if !strings.HasPrefix(string(autText), "des (") {
		t.Errorf("aut export malformed: %q", string(autText)[:20])
	}
}

func TestRunCheckSolveSim(t *testing.T) {
	model := specPath(t, "rpc_revised_markov.aem")
	measures := specPath(t, "rpc.msr")
	if err := run([]string{"check",
		"-high-labels", "DPM.send_shutdown#S.receive_shutdown",
		"-low", "C", model}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"solve", "-measures", measures, model}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sim", "-measures", measures,
		"-runlength", "200", "-reps", "2", model}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEquivAndMinimize(t *testing.T) {
	a := specPath(t, "rpc_simplified.aem")
	b := specPath(t, "rpc_revised_functional.aem")
	if err := run([]string{"equiv", "-relation", "weak", a, b}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"equiv", "-relation", "strong", a, a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"equiv", "-relation", "markovian", a, a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"minimize", "-relation", "weak", a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"minimize", "-relation", "markovian", a}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dot := filepath.Join(dir, "min.dot")
	if err := run([]string{"minimize", "-relation", "strong", "-dot", dot, a}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dot); err != nil {
		t.Errorf("minimized dot not written: %v", err)
	}
}

func TestRunMC(t *testing.T) {
	simplified := specPath(t, "rpc_simplified.aem")
	paperFormula := "EXISTS_WEAK_TRANS(LABEL(C.send_rpc_packet#RCS.get_packet); " +
		"REACHED_STATE_SAT(NOT(EXISTS_WEAK_TRANS(LABEL(RSC.deliver_packet#C.receive_result_packet); " +
		"REACHED_STATE_SAT(TRUE)))))"
	// The paper's diagnostic formula holds in the (hidden) simplified
	// system: the flaw is present.
	if err := run([]string{"mc", "-hide-except", "C",
		"-formula", paperFormula, simplified}); err != nil {
		t.Fatal(err)
	}
	// A formula over a non-existent label is trivially unsatisfied.
	if err := run([]string{"mc",
		"-formula", "EXISTS_TRANS(LABEL(no.such#label.here); REACHED_STATE_SAT(TRUE))",
		simplified}); err != nil {
		t.Fatal(err)
	}
	// Errors: missing formula, bad formula.
	if err := run([]string{"mc", simplified}); err == nil {
		t.Error("missing -formula should fail")
	}
	if err := run([]string{"mc", "-formula", "NOPE(", simplified}); err == nil {
		t.Error("malformed formula should fail")
	}
}
