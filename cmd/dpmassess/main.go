// Command dpmassess runs the incremental DPM-assessment methodology on a
// textual .aem architectural description.
//
// Usage:
//
//	dpmassess lts      [-dot out.dot] [-max N] [-compose full|minimize] [-stats]
//	                   [-workers N] model.aem
//	dpmassess check    -high INST -low INST [-high-labels l1,l2] [-workers N] model.aem
//	dpmassess solve    -measures spec.msr [-sweep auto|gauss-seidel|jacobi|multilevel]
//	                   [-compose full|minimize] [-stats] [-lanes K]
//	                   [-checkpoint file.ckpt] [-resume] [-workers N] model.aem
//	dpmassess sim      -measures spec.msr [-runlength T] [-warmup T]
//	                   [-reps N] [-seed S] [-workers N] model.aem
//	dpmassess equiv    [-relation strong|weak|markovian] [-workers N] a.aem b.aem
//	dpmassess minimize [-relation strong|weak|markovian] [-dot out.dot] [-workers N] model.aem
//	dpmassess mc       -formula 'EXISTS_WEAK_TRANS(...)' [-hide-except INST] [-workers N] model.aem
//
// Every subcommand that explores a state space takes -workers: it bounds
// the generation worker pool (and, for solve, the steady-state solver
// pool). Outputs are bit-identical at any worker count. Every subcommand
// also takes -timeout: an overall deadline after which generation, solves
// and simulations are canceled promptly (reported as a cancellation error
// naming the phase that observed it).
//
// lts and solve take -compose: "full" (the default) generates the plain
// parallel product, "minimize" lumps each component before composition
// and folds vanishing states during generation, so the full product never
// materializes. Measure values are identical either way; state counts are
// not, because minimization is the point. sim always runs on the full
// model — minimization accelerates the Markovian path only.
//
// The solve subcommand is resumable on models with rate parameters:
// -checkpoint periodically saves the solver's progress to a versioned,
// checksummed file, and -resume replays it instead of re-solving, with
// output bit-identical to an uninterrupted run.
//
// The check subcommand performs the phase-1 noninterference analysis
// (hide-vs-restrict up to weak bisimulation) and prints the diagnostic
// distinguishing formula on failure. solve performs the phase-2 Markovian
// analysis: it extracts and solves the CTMC and evaluates the measures
// defined in the companion-language file. sim estimates the same measures
// by discrete-event simulation (exponential durations from the model's
// rates; use the Go API for general distributions).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/aemilia/parser"
	"repro/internal/bisim"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/hml"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/noninterference"
	"repro/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dpmassess:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dpmassess <lts|check|solve|sim> [flags] model.aem")
	}
	switch args[0] {
	case "lts":
		return runLTS(args[1:])
	case "check":
		return runCheck(args[1:])
	case "solve":
		return runSolve(args[1:])
	case "sim":
		return runSim(args[1:])
	case "equiv":
		return runEquiv(args[1:])
	case "minimize":
		return runMinimize(args[1:])
	case "mc":
		return runMC(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// runMC model-checks a diagnostic formula against a model's initial
// state: the closing step of the paper's repair loop, where the formula
// emitted by a failed noninterference check is re-checked against a
// candidate fix. The -hide flag applies the same observation window the
// transparency check uses (everything but the low instance becomes tau).
func runMC(args []string) error {
	fs := flag.NewFlagSet("mc", flag.ContinueOnError)
	formulaText := fs.String("formula", "", "formula in TwoTowers diagnostic syntax")
	hideExcept := fs.String("hide-except", "", "hide every label not involving this instance (observation window)")
	workers := workersFlag(fs)
	timeout := timeoutFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, stopCtx := timeoutCtx(*timeout)
	defer stopCtx()
	path, err := positional(fs)
	if err != nil {
		return err
	}
	if *formulaText == "" {
		return fmt.Errorf("-formula is required")
	}
	f, err := hml.Parse(*formulaText)
	if err != nil {
		return err
	}
	l, err := loadLTS(ctx, path, *workers)
	if err != nil {
		return err
	}
	if *hideExcept != "" {
		low := lts.LabelMatcherByInstance(*hideExcept)
		l = lts.Hide(l, func(label string) bool { return !low(label) })
	}
	checker := hml.NewChecker(l)
	if checker.Sat(l.Initial, f) {
		fmt.Println("verdict: SATISFIED in the initial state")
	} else {
		fmt.Println("verdict: NOT satisfied in the initial state")
	}
	return nil
}

// runEquiv compares two models up to the chosen equivalence and prints a
// distinguishing formula on failure.
func runEquiv(args []string) error {
	fs := flag.NewFlagSet("equiv", flag.ContinueOnError)
	relName := fs.String("relation", "weak", "equivalence relation (strong, weak, markovian)")
	workers := workersFlag(fs)
	timeout := timeoutFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, stopCtx := timeoutCtx(*timeout)
	defer stopCtx()
	if fs.NArg() != 2 {
		return fmt.Errorf("equiv expects two model files")
	}
	l1, err := loadLTS(ctx, fs.Arg(0), *workers)
	if err != nil {
		return err
	}
	l2, err := loadLTS(ctx, fs.Arg(1), *workers)
	if err != nil {
		return err
	}
	switch *relName {
	case "markovian":
		if bisim.MarkovianEquivalent(l1, l2) {
			fmt.Println("verdict: MARKOVIAN BISIMILAR (lumping-equivalent)")
		} else {
			fmt.Println("verdict: NOT Markovian bisimilar")
		}
		return nil
	case "strong", "weak":
		rel := bisim.Weak
		if *relName == "strong" {
			rel = bisim.Strong
		}
		ok, f := bisim.Equivalent(l1, l2, rel)
		if ok {
			fmt.Printf("verdict: %s BISIMILAR\n", strings.ToUpper(*relName))
			return nil
		}
		fmt.Printf("verdict: NOT %s bisimilar\n", *relName)
		fmt.Println("distinguishing formula (holds in the first model, fails in the second):")
		fmt.Println("  " + hml.Format(f))
		return nil
	default:
		return fmt.Errorf("unknown relation %q", *relName)
	}
}

// runMinimize reduces a model's state space by the chosen equivalence and
// reports the compression.
func runMinimize(args []string) error {
	fs := flag.NewFlagSet("minimize", flag.ContinueOnError)
	relName := fs.String("relation", "weak", "equivalence relation (strong, weak, markovian)")
	dotPath := fs.String("dot", "", "write the quotient in Graphviz DOT format")
	workers := workersFlag(fs)
	timeout := timeoutFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, stopCtx := timeoutCtx(*timeout)
	defer stopCtx()
	path, err := positional(fs)
	if err != nil {
		return err
	}
	l, err := loadLTS(ctx, path, *workers)
	if err != nil {
		return err
	}
	var m *lts.LTS
	switch *relName {
	case "markovian":
		m = bisim.Lump(l)
	case "strong":
		m = bisim.Minimize(l, bisim.Strong)
	case "weak":
		m = bisim.Minimize(l, bisim.Weak)
	default:
		return fmt.Errorf("unknown relation %q", *relName)
	}
	fmt.Printf("original: %d states, %d transitions\n", l.NumStates, l.NumTransitions())
	fmt.Printf("quotient: %d states, %d transitions (%.1f%% of original states)\n",
		m.NumStates, m.NumTransitions(), 100*float64(m.NumStates)/float64(l.NumStates))
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lts.WriteDOT(f, m, path); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
	return nil
}

// workersFlag registers the shared -workers flag: the generation (and,
// where applicable, solver) worker-pool bound.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", runtime.NumCPU(),
		"state-space generation workers (outputs are identical at any value)")
}

// composeFlag registers the shared -compose flag: the composition
// strategy of the state-space-building subcommands.
func composeFlag(fs *flag.FlagSet) *string {
	return fs.String("compose", "full",
		"composition strategy: full generates the plain parallel product,\n"+
			"minimize lumps each component before composition and folds vanishing\n"+
			"states during generation (measure values are identical either way)")
}

// parseCompose maps the -compose value onto the minimize policy.
func parseCompose(mode string) (minimize bool, err error) {
	switch mode {
	case "full":
		return false, nil
	case "minimize":
		return true, nil
	default:
		return false, fmt.Errorf("unknown -compose mode %q (want full or minimize)", mode)
	}
}

// printMemStats renders the resident-memory breakdown of a generated
// state space: the interned state table, the CSR transition arrays, and
// the fold-attribution pool.
func printMemStats(l *lts.LTS) {
	stateTable, csrBytes, auxBytes := l.MemStats()
	fmt.Printf("memory:      state table %s, transitions %s, attribution %s\n",
		fmtBytes(stateTable), fmtBytes(csrBytes), fmtBytes(auxBytes))
}

// fmtBytes renders a byte count at a human scale.
func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// printComposeStats renders the per-component reduction of a
// compositional minimization, with the worst-case product bound it
// implies.
func printComposeStats(st *compose.Stats) {
	full, minimized := st.ProductBound()
	fmt.Printf("compose:     %s (product bound %.4g → %.4g)\n", st, full, minimized)
}

// timeoutFlag registers the shared -timeout flag: the subcommand's
// overall deadline.
func timeoutFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0,
		"overall deadline: generation, solves and simulations are canceled\n"+
			"promptly once it expires (0 = no deadline)")
}

// timeoutCtx turns the -timeout value into a cancellation context: nil
// (which disables deadline polling entirely) when no deadline was asked
// for. Defer the returned stop function around the subcommand's work.
func timeoutCtx(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return nil, func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

// profFlags carries the shared -cpuprofile/-memprofile flags.
type profFlags struct {
	cpu, mem *string
}

// profileFlags registers the shared profiling flags, so any subcommand
// can record where its time and memory go (`go tool pprof` reads the
// output).
func profileFlags(fs *flag.FlagSet) profFlags {
	return profFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// start begins CPU profiling when requested and returns the function that
// stops it and writes the heap profile; defer it around the subcommand's
// work. Profile-write failures on the way out are reported as warnings:
// the analysis result is the product, the profile a diagnostic.
func (p profFlags) start() (func(), error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dpmassess: cpu profile:", err)
			}
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dpmassess: heap profile:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dpmassess: heap profile:", err)
			}
			f.Close()
		}
	}, nil
}

// loadLTS parses a model file and generates its state space on the given
// worker pool, polling ctx at BFS level boundaries.
func loadLTS(ctx context.Context, path string, workers int) (*lts.LTS, error) {
	m, err := loadModel(path)
	if err != nil {
		return nil, err
	}
	return lts.Generate(m, lts.GenerateOptions{GenWorkers: workers, Ctx: ctx})
}

func loadModel(path string) (*elab.Model, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	arch, err := parser.Parse(string(src))
	if err != nil {
		return nil, err
	}
	return elab.Elaborate(arch)
}

func positional(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one model file, got %d arguments", fs.NArg())
	}
	return fs.Arg(0), nil
}

func runLTS(args []string) error {
	fs := flag.NewFlagSet("lts", flag.ContinueOnError)
	dotPath := fs.String("dot", "", "write the state space in Graphviz DOT format")
	autPath := fs.String("aut", "", "write the state space in Aldebaran (CADP) format")
	maxStates := fs.Int("max", 0, "abort beyond this many states (0 = default bound)")
	composeMode := composeFlag(fs)
	stats := fs.Bool("stats", false,
		"print resident-memory statistics (state table, transition arrays,\n"+
			"attribution pool) and, with -compose minimize, the per-component\n"+
			"reduction")
	workers := workersFlag(fs)
	timeout := timeoutFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, stopCtx := timeoutCtx(*timeout)
	defer stopCtx()
	path, err := positional(fs)
	if err != nil {
		return err
	}
	minimize, err := parseCompose(*composeMode)
	if err != nil {
		return err
	}
	m, err := loadModel(path)
	if err != nil {
		return err
	}
	genOpts := lts.GenerateOptions{
		MaxStates:        *maxStates,
		KeepDescriptions: *dotPath != "",
		GenWorkers:       *workers,
		Ctx:              ctx,
	}
	var compStats *compose.Stats
	if minimize {
		qm, st, err := compose.Minimize(m, compose.Options{})
		if err != nil {
			return err
		}
		m, compStats = qm, st
		genOpts.Fold = &lts.FoldOptions{}
	}
	l, err := lts.Generate(m, genOpts)
	if err != nil {
		return err
	}
	fmt.Printf("states:      %d\n", l.NumStates)
	fmt.Printf("transitions: %d\n", l.NumTransitions())
	fmt.Printf("labels:      %d\n", l.NumLabels())
	if dl := l.Deadlocks(); len(dl) > 0 {
		fmt.Printf("deadlocks:   %d\n", len(dl))
	}
	if *stats {
		printMemStats(l)
		if compStats != nil {
			printComposeStats(compStats)
		}
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lts.WriteDOT(f, l, path); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
	if *autPath != "" {
		f, err := os.Create(*autPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lts.WriteAUT(f, l); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *autPath)
	}
	return nil
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	high := fs.String("high", "", "high instance (its synchronizations are the power commands)")
	low := fs.String("low", "", "low instance (its actions are the observables)")
	highLabels := fs.String("high-labels", "", "comma-separated explicit high labels (overrides -high)")
	workers := workersFlag(fs)
	timeout := timeoutFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, stopCtx := timeoutCtx(*timeout)
	defer stopCtx()
	path, err := positional(fs)
	if err != nil {
		return err
	}
	if *high == "" && *highLabels == "" {
		return fmt.Errorf("one of -high or -high-labels is required")
	}
	if *low == "" {
		return fmt.Errorf("-low is required")
	}
	m, err := loadModel(path)
	if err != nil {
		return err
	}
	spec := noninterference.Spec{Low: lts.LabelMatcherByInstance(*low)}
	if *highLabels != "" {
		spec.High = lts.LabelMatcherByNames(strings.Split(*highLabels, ",")...)
	} else {
		spec.High = lts.LabelMatcherByInstance(*high)
	}
	l, err := lts.Generate(m, lts.GenerateOptions{GenWorkers: *workers, Ctx: ctx})
	if err != nil {
		return err
	}
	res, err := noninterference.Check(l, spec)
	if err != nil {
		return err
	}
	fmt.Printf("states:            %d\n", l.NumStates)
	fmt.Printf("hidden variant:    %d states\n", res.HiddenStates)
	fmt.Printf("restricted variant: %d states\n", res.RestrictedStates)
	if res.Transparent {
		fmt.Println("verdict: NONINTERFERENCE HOLDS (the high component is transparent)")
		return nil
	}
	fmt.Println("verdict: INTERFERENCE DETECTED")
	fmt.Println("distinguishing formula (holds with the high component hidden, fails with it disabled):")
	fmt.Println("  " + res.FormulaText)
	return nil
}

func readMeasures(path string) ([]measure.Measure, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return measure.Parse(string(src))
}

func runSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	measuresPath := fs.String("measures", "", "measure definition file (companion language)")
	sweepName := fs.String("sweep", "auto",
		"steady-state sweep mode: auto, gauss-seidel, jacobi, or multilevel\n"+
			"(two-level aggregation/disaggregation for slow-mixing chains)")
	composeMode := composeFlag(fs)
	stats := fs.Bool("stats", false,
		"print statistics after the measures: resident memory of the state\n"+
			"space, the per-component reduction (with -compose minimize), and the\n"+
			"solver trace — the scheme that actually ran, iterations (and\n"+
			"multilevel cycles), final residual, and every escalation attempt")
	lanes := fs.Int("lanes", 0,
		"sweep points solved per batched steady-state call on checkpointed solves:\n"+
			"0 auto-selects, 1 forces the per-point solver (results are identical at\n"+
			"any value; matches the study tools' -lanes flag)")
	ckptPath := fs.String("checkpoint", "",
		"checkpoint file: the solve periodically saves its progress there\n"+
			"(requires a model with rate parameters; empty = disabled)")
	resume := fs.Bool("resume", false,
		"resume from an existing -checkpoint file, replaying the saved solution\n"+
			"instead of re-solving (output is identical to an uninterrupted run)")
	workers := workersFlag(fs)
	timeout := timeoutFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, stopCtx := timeoutCtx(*timeout)
	defer stopCtx()
	path, err := positional(fs)
	if err != nil {
		return err
	}
	if *measuresPath == "" {
		return fmt.Errorf("-measures is required")
	}
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	var sweep ctmc.Sweep
	switch *sweepName {
	case "auto":
		sweep = ctmc.SweepAuto
	case "gauss-seidel":
		sweep = ctmc.SweepGaussSeidel
	case "jacobi":
		sweep = ctmc.SweepJacobi
	case "multilevel":
		sweep = ctmc.SweepMultilevel
	default:
		return fmt.Errorf("unknown sweep mode %q", *sweepName)
	}
	minimize, err := parseCompose(*composeMode)
	if err != nil {
		return err
	}
	ms, err := readMeasures(*measuresPath)
	if err != nil {
		return err
	}
	m, err := loadModel(path)
	if err != nil {
		return err
	}
	// One session stages the whole solve: elaborated model, state space,
	// chain, and solution are each built exactly once, shared by whichever
	// path (plain or checkpointed) consumes them.
	s := pipeline.NewSession(pipeline.Spec{
		Model:    m,
		Measures: ms,
		Gen:      lts.GenerateOptions{GenWorkers: *workers, Ctx: ctx},
		Minimize: minimize,
		Solve:    ctmc.SolveOptions{Sweep: sweep, Workers: *workers, Ctx: ctx},
	}, pipeline.Config{Workers: *workers, LaneWidth: *lanes, Ctx: ctx})
	var rep *core.Phase2Report
	if *ckptPath != "" {
		// Checkpointed solves go through the sweep driver: a one-point
		// sweep at the model's own rates, saved to (and resumed from) the
		// checkpoint file. For a parametric model the rates are read from
		// the session's staged state space — the same generation the sweep
		// reuses; a slot-free model solves as one empty point.
		point := []float64{}
		if m.NumRateSlots() > 0 {
			l, err := s.LTS()
			if err != nil {
				return err
			}
			point = l.SlotDefaults()
		}
		reports, err := s.SweepCheckpointed([][]float64{point},
			&pipeline.CheckpointOptions{Path: *ckptPath, Every: 1, Resume: *resume})
		if err != nil {
			return err
		}
		rep = reports[0]
	} else {
		rep, err = s.Phase2()
		if err != nil {
			return err
		}
	}
	fmt.Printf("states: %d (tangible %d, vanishing %d)\n", rep.States, rep.Tangible, rep.Vanishing)
	for _, m := range ms {
		fmt.Printf("%-24s %.8g\n", m.Name, rep.Values[m.Name])
	}
	if *stats {
		if l, err := s.LTS(); err == nil {
			printMemStats(l)
		}
		if st, err := s.MinimizeStats(); err == nil && st != nil {
			printComposeStats(st)
		}
		printSolveTrace(rep.Trace)
	}
	return nil
}

// printSolveTrace renders a report's solver trace, one line per attempt:
// the scheme that actually ran (auto upgrades included), its iteration
// budget and outcome, and — for multilevel attempts — the outer cycle
// count. Checkpointed solves record traces only for escalated points, so
// a missing trace is reported rather than silently skipped.
func printSolveTrace(tr *ctmc.SolveTrace) {
	if tr == nil || len(tr.Attempts) == 0 {
		fmt.Println("solver: no trace recorded (checkpointed solves trace only escalated points)")
		return
	}
	fmt.Printf("solver: %d attempt(s), escalated=%t\n", len(tr.Attempts), tr.Escalated())
	for _, a := range tr.Attempts {
		line := fmt.Sprintf("solver:   rung %d %-21s sweep=%-12s iterations=%d",
			a.Rung, a.Action, a.Sweep, a.Iterations)
		if a.Cycles > 0 {
			line += fmt.Sprintf(" cycles=%d", a.Cycles)
		}
		line += fmt.Sprintf(" residual=%.3g max-iterations=%d converged=%t",
			a.Residual, a.MaxIterations, a.Converged)
		fmt.Println(line)
	}
}

func runSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	measuresPath := fs.String("measures", "", "measure definition file (companion language)")
	runLength := fs.Float64("runlength", 10000, "measured model time per replication")
	warmup := fs.Float64("warmup", 0, "discarded warm-up time")
	reps := fs.Int("reps", 30, "independent replications")
	seed := fs.Uint64("seed", 1, "master random seed")
	level := fs.Float64("confidence", 0.90, "confidence level")
	composeMode := composeFlag(fs)
	workers := fs.Int("workers", runtime.NumCPU(),
		"concurrent replications (estimates are identical at any value)")
	timeout := timeoutFlag(fs)
	prof := profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	defer stopProf()
	ctx, stopCtx := timeoutCtx(*timeout)
	defer stopCtx()
	path, err := positional(fs)
	if err != nil {
		return err
	}
	if *measuresPath == "" {
		return fmt.Errorf("-measures is required")
	}
	if minimize, err := parseCompose(*composeMode); err != nil {
		return err
	} else if minimize {
		// Accepted for interface uniformity with lts/solve: simulation
		// always walks the full model, so there is nothing to minimize.
		fmt.Fprintln(os.Stderr, "dpmassess: sim always runs on the full model; -compose minimize has no effect")
	}
	ms, err := readMeasures(*measuresPath)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	arch, err := parser.Parse(string(src))
	if err != nil {
		return err
	}
	rep, err := core.Phase3(arch, nil, ms, core.SimSettings{
		RunLength:       *runLength,
		Warmup:          *warmup,
		Replications:    *reps,
		Seed:            *seed,
		ConfidenceLevel: *level,
		Workers:         *workers,
		Ctx:             ctx,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replications: %d, events: %d\n", rep.Replications, rep.Events)
	for _, m := range ms {
		fmt.Printf("%-24s %v\n", m.Name, rep.Estimates[m.Name])
	}
	return nil
}
