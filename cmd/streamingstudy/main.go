// Command streamingstudy regenerates the streaming results of the paper:
// the Sect. 3.2 noninterference verdict, the Markovian comparison of
// Fig. 4, the general-model comparison of Fig. 6, and the energy/miss
// trade-off of Fig. 8.
//
// Usage:
//
//	streamingstudy [-experiment all|sect3|fig4|fig6|fig8] [-csv] [-quick]
//	               [-compose full|minimize] [-workers N] [-lanes K]
//	               [-timeout D] [-checkpoint DIR] [-resume]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "streamingstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("streamingstudy", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "which experiment to run (all, sect3, fig4, fig6, fig8, transient)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	quick := fs.Bool("quick", false, "small buffers and shorter simulations (smoke run)")
	composeMode := fs.String("compose", "full",
		"composition strategy for the Markovian analyses: full generates the\n"+
			"plain parallel product, minimize lumps each component before\n"+
			"composition and folds vanishing states during generation (measure\n"+
			"values are identical either way)")
	workers := fs.Int("workers", runtime.NumCPU(),
		"concurrent sweep points, simulation replications, state-space generation\n"+
			"workers, and steady-state solver workers (results are identical at any value)")
	lanes := fs.Int("lanes", 0,
		"sweep points solved per batched steady-state call: 0 auto-selects,\n"+
			"1 forces the per-point solver (results are identical at any value)")
	timeout := fs.Duration("timeout", 0,
		"overall deadline: generation, solves, sweeps and simulations are\n"+
			"canceled promptly once it expires (0 = no deadline)")
	ckptDir := fs.String("checkpoint", "",
		"directory for sweep checkpoints: Markovian sweeps periodically save\n"+
			"completed points there and become resumable (empty = disabled)")
	resume := fs.Bool("resume", false,
		"resume Markovian sweeps from existing checkpoints in -checkpoint DIR,\n"+
			"re-solving only the missing points (results are identical to an\n"+
			"uninterrupted run)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := pipeline.Config{
		Workers:   *workers,
		LaneWidth: *lanes,
		Store:     pipeline.NewMemoryStore(),
	}
	switch *composeMode {
	case "full":
	case "minimize":
		cfg.Minimize = true
	default:
		return fmt.Errorf("unknown -compose mode %q (want full or minimize)", *composeMode)
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Ctx = ctx
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointResume = *resume
	study := experiments.NewRunner(cfg)
	scale := experiments.Full
	settings := core.SimSettings{Workers: *workers}
	if *quick {
		scale = experiments.Quick
		settings = core.SimSettings{RunLength: 60000, Warmup: 20000, Replications: 5, Workers: *workers}
	}
	render := experiments.FormatTable
	if *csv {
		render = experiments.FormatCSV
	}
	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("sect3") {
		fmt.Println("== Sect. 3.2: noninterference ==")
		res, err := study.StreamingNoninterference(scale)
		if err != nil {
			return err
		}
		fmt.Printf("streaming (%d states): transparent=%t\n\n", res.States, res.Transparent)
		if !res.Transparent {
			fmt.Println("distinguishing formula:")
			fmt.Println("  " + res.Formula)
		}
	}

	if want("fig4") {
		fmt.Println("== Fig. 4: Markovian streaming comparison ==")
		pts, err := study.Fig4Markov(nil, scale)
		if err != nil {
			return err
		}
		h, rows := experiments.Fig4Rows(pts)
		fmt.Println(render(h, rows))
	}

	if want("fig6") {
		fmt.Println("== Fig. 6: general streaming comparison (CBR video, deadlines) ==")
		pts, err := study.Fig6General(nil, scale, settings)
		if err != nil {
			return err
		}
		h, rows := experiments.Fig4Rows(pts)
		fmt.Println(render(h, rows))
	}

	if want("transient") {
		fmt.Println("== Extension: start-up transient (P[buffer empty](t), awake period 100 ms) ==")
		pts, err := study.StreamingStartupTransient(nil, 100, scale)
		if err != nil {
			return err
		}
		h, rows := experiments.TransientRows(pts)
		fmt.Println(render(h, rows))
	}

	if want("fig8") {
		fmt.Println("== Fig. 8: energy/miss trade-off ==")
		curves, err := study.Fig8Tradeoff(nil, scale, settings)
		if err != nil {
			return err
		}
		h, rows := experiments.TradeoffRows(curves, "miss_rate", "energy_per_frame")
		fmt.Println(render(h, rows))
	}
	return nil
}
