package main

import "testing"

func TestRunSect3Quick(t *testing.T) {
	if err := run([]string{"-experiment", "sect3", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTransientQuick(t *testing.T) {
	if err := run([]string{"-experiment", "transient", "-quick", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag should error")
	}
}
