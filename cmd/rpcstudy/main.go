// Command rpcstudy regenerates the rpc results of the paper: the Sect. 3.1
// noninterference verdicts with the diagnostic formula, the Markovian
// comparison of Fig. 3 (left), the general-model comparison of Fig. 3
// (right), the cross-validation of Fig. 5, and the energy/waiting-time
// trade-off of Fig. 7.
//
// Usage:
//
//	rpcstudy [-experiment all|sect3|fig3markov|fig3general|fig5|fig7]
//	         [-csv] [-quick] [-compose full|minimize] [-workers N] [-lanes K]
//	         [-timeout D] [-checkpoint DIR] [-resume]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rpcstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rpcstudy", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "which experiment to run (all, sect3, fig3markov, fig3general, fig5, fig7, policies, battery)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	quick := fs.Bool("quick", false, "shorter simulations (smoke run)")
	composeMode := fs.String("compose", "full",
		"composition strategy for the Markovian analyses: full generates the\n"+
			"plain parallel product, minimize lumps each component before\n"+
			"composition and folds vanishing states during generation (measure\n"+
			"values are identical either way)")
	workers := fs.Int("workers", runtime.NumCPU(),
		"concurrent sweep points, simulation replications, state-space generation\n"+
			"workers, and steady-state solver workers (results are identical at any value)")
	lanes := fs.Int("lanes", 0,
		"sweep points solved per batched steady-state call: 0 auto-selects,\n"+
			"1 forces the per-point solver (results are identical at any value)")
	timeout := fs.Duration("timeout", 0,
		"overall deadline: generation, solves, sweeps and simulations are\n"+
			"canceled promptly once it expires (0 = no deadline)")
	ckptDir := fs.String("checkpoint", "",
		"directory for sweep checkpoints: Markovian sweeps periodically save\n"+
			"completed points there and become resumable (empty = disabled)")
	resume := fs.Bool("resume", false,
		"resume Markovian sweeps from existing checkpoints in -checkpoint DIR,\n"+
			"re-solving only the missing points (results are identical to an\n"+
			"uninterrupted run)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := pipeline.Config{
		Workers:   *workers,
		LaneWidth: *lanes,
		Store:     pipeline.NewMemoryStore(),
	}
	switch *composeMode {
	case "full":
	case "minimize":
		cfg.Minimize = true
	default:
		return fmt.Errorf("unknown -compose mode %q (want full or minimize)", *composeMode)
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Ctx = ctx
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointResume = *resume
	study := experiments.NewRunner(cfg)
	settings := core.SimSettings{Workers: *workers}
	if *quick {
		settings = core.SimSettings{RunLength: 4000, Replications: 8, Workers: *workers}
	}
	render := experiments.FormatTable
	if *csv {
		render = experiments.FormatCSV
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("sect3") {
		fmt.Println("== Sect. 3.1: noninterference ==")
		simplified, err := study.RPCNoninterferenceSimplified()
		if err != nil {
			return err
		}
		fmt.Printf("simplified rpc (%d states): transparent=%t\n", simplified.States, simplified.Transparent)
		if !simplified.Transparent {
			fmt.Println("distinguishing formula:")
			fmt.Println("  " + simplified.Formula)
		}
		revised, err := study.RPCNoninterferenceRevised()
		if err != nil {
			return err
		}
		fmt.Printf("revised rpc (%d states): transparent=%t\n\n", revised.States, revised.Transparent)
	}

	if want("fig3markov") {
		fmt.Println("== Fig. 3 (left): Markovian rpc comparison ==")
		pts, err := study.Fig3Markov(nil)
		if err != nil {
			return err
		}
		h, rows := experiments.Fig3Rows(pts)
		fmt.Println(render(h, rows))
	}

	if want("fig3general") {
		fmt.Println("== Fig. 3 (right): general rpc comparison (deterministic timings) ==")
		pts, err := study.Fig3General(nil, settings)
		if err != nil {
			return err
		}
		h, rows := experiments.Fig3Rows(pts)
		fmt.Println(render(h, rows))
	}

	if want("fig5") {
		fmt.Println("== Fig. 5: validation of the general model (exponential durations) ==")
		pts, err := study.Fig5Validation(nil, settings)
		if err != nil {
			return err
		}
		h, rows := experiments.Fig5Rows(pts)
		fmt.Println(render(h, rows))
	}

	if want("policies") {
		fmt.Println("== Extension: DPM policy ablation (Markovian, timeout/period 5 ms) ==")
		pts, err := study.PolicyComparison(5)
		if err != nil {
			return err
		}
		h, rows := experiments.PolicyRows(pts)
		fmt.Println(render(h, rows))
	}

	if want("battery") {
		fmt.Println("== Extension: battery lifetime (transient analysis, budget 5000) ==")
		pts, err := study.BatteryLifetime(5000, 5, 20)
		if err != nil {
			return err
		}
		h, rows := experiments.BatteryRows(pts)
		fmt.Println(render(h, rows))
	}

	if want("fig7") {
		fmt.Println("== Fig. 7: energy/waiting-time trade-off ==")
		curves, err := study.Fig7Tradeoff(nil, settings)
		if err != nil {
			return err
		}
		h, rows := experiments.TradeoffRows(curves, "waiting_time", "energy_per_request")
		fmt.Println(render(h, rows))
		if dom := experiments.ParetoDominated(curves.General); len(dom) > 0 {
			fmt.Printf("Pareto-dominated points on the general curve (timeouts near the idle period): %d\n", len(dom))
		}
	}
	return nil
}
