package main

import "testing"

func TestRunSect3(t *testing.T) {
	if err := run([]string{"-experiment", "sect3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPolicies(t *testing.T) {
	if err := run([]string{"-experiment", "policies", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag should error")
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	// Unknown names simply select nothing.
	if err := run([]string{"-experiment", "nothing"}); err != nil {
		t.Fatal(err)
	}
}
