// Package repro is a Go reproduction of "Assessing the Impact of Dynamic
// Power Management on the Functionality and the Performance of
// Battery-Powered Appliances" (Acquaviva, Aldini, Bernardo, Bogliolo,
// Bontà, Lattanzi — DSN 2004).
//
// The repository implements the paper's incremental methodology end to
// end — an Æmilia-style stochastic process-algebraic architectural
// description language, a weak-bisimulation equivalence checker with
// distinguishing-formula generation, a noninterference analyser, a CTMC
// extractor and solver with reward structures, and a GSMP discrete-event
// simulator for general distributions — together with the paper's two
// case studies (a power-manageable RPC server and a streaming-video
// client behind a power-manageable 802.11b NIC) and drivers regenerating
// every table and figure of the evaluation.
//
// Entry points:
//
//   - internal/core       — the three-phase methodology (Fig. 1)
//   - internal/models     — the rpc and streaming case studies
//   - internal/experiments — one driver per paper figure
//   - cmd/dpmassess       — CLI over .aem files
//   - cmd/rpcstudy, cmd/streamingstudy — figure regeneration
//   - examples/           — runnable walkthroughs
//
// See README.md for a quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go regenerate each figure (go test -bench=.).
package repro
