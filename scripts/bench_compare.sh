#!/bin/sh
# bench_compare.sh — benchmark the working tree, optionally against a
# baseline git ref, and feed both runs to benchstat when it is installed
# (raw outputs are printed otherwise; nothing is downloaded).
#
# Usage:
#   scripts/bench_compare.sh [-r ref] [-c count] [-p pattern] [-s]
#
#   -r ref      baseline git ref to compare against (default: no baseline,
#               bench the working tree only)
#   -c count    benchmark repetitions per side (default 5)
#   -p pattern  -bench regexp (default: every benchmark)
#   -s          smoke mode: one iteration of the matched benchmarks under
#               the race detector at -cpu 1,2, so the parallel generation,
#               solve, sweep, and simulation paths run both the degenerate
#               and a multi-worker schedule in CI. No baseline, no timing.
set -eu
cd "$(dirname "$0")/.."

ref=""
count=5
pattern="."
smoke=0
while getopts "r:c:p:s" opt; do
    case "$opt" in
    r) ref=$OPTARG ;;
    c) count=$OPTARG ;;
    p) pattern=$OPTARG ;;
    s) smoke=1 ;;
    *) echo "usage: $0 [-r ref] [-c count] [-p pattern] [-s]" >&2; exit 2 ;;
    esac
done

if [ "$smoke" = 1 ]; then
    exec go test -race -run '^$' -bench "$pattern" -benchtime 1x -cpu 1,2 ./...
fi

bench() {
    go test -run '^$' -bench "$pattern" -benchtime 1x -count "$count" ./...
}

new_out=$(mktemp)
trap 'rm -f "$new_out" "${old_out:-}"' EXIT

echo "== bench: working tree =="
bench | tee "$new_out"

if [ -z "$ref" ]; then
    exit 0
fi

old_out=$(mktemp)
worktree=$(mktemp -d)
git worktree add --detach "$worktree" "$ref" >/dev/null
trap 'rm -f "$new_out" "$old_out"; git worktree remove --force "$worktree" >/dev/null 2>&1 || true' EXIT

echo "== bench: $ref =="
(cd "$worktree" && bench) | tee "$old_out"

if command -v benchstat >/dev/null 2>&1; then
    echo "== benchstat ($ref vs working tree) =="
    benchstat "$old_out" "$new_out"
else
    echo "benchstat not installed; raw outputs above (old: $ref, new: working tree)"
fi
