#!/bin/sh
# bench_compare.sh — benchmark the working tree, optionally against a
# baseline git ref, and feed both runs to benchstat when it is installed
# (raw outputs are printed otherwise; nothing is downloaded).
#
# Usage:
#   scripts/bench_compare.sh [-r ref] [-c count] [-p pattern] [-s] [-S] [-B] [-M] [-P] [-C]
#
#   -r ref      baseline git ref to compare against (default: no baseline,
#               bench the working tree only)
#   -c count    benchmark repetitions per side (default 5)
#   -p pattern  -bench regexp (default: every benchmark)
#   -s          smoke mode: one iteration of the matched benchmarks under
#               the race detector at -cpu 1,2, so the parallel generation,
#               solve, sweep, and simulation paths run both the degenerate
#               and a multi-worker schedule in CI. No baseline, no timing.
#   -S          sweep-reuse mode: time the BenchmarkSweepReuseFresh /
#               BenchmarkSweepReuseRebind pair (same six-point Fig. 3
#               timeout sweep, per-point pipeline vs generate-once rebind)
#               and write results/BENCH_sweepreuse.json with the median
#               ns/op of each side and the per-point speedup ratio.
#   -B          batch-solve mode: time the BenchmarkBatchSolve* six
#               (16-point sweep on the rpc and streaming chains: rebind +
#               per-point solve, per-point with the cached plan, and the
#               batched eight-lane SolveBatch) and write
#               results/BENCH_batchsolve.json with the median ns/op of
#               each variant and the per-model and aggregate speedups of
#               the batched kernel over the per-point path.
#   -M          multilevel-solver mode: time the BenchmarkMultilevel*
#               family (the ε-coupled two-cluster chain under Gauss-
#               Seidel, damped Jacobi, and the multilevel IAD cycle, the
#               rpc and streaming study chains under Gauss-Seidel vs
#               multilevel, and the 8-lane batched ε sweep) and write
#               results/BENCH_multilevel.json with the median ns/op and
#               iteration counts of every scheme and the iteration and
#               wall-clock reductions of the multilevel cycle.
#   -C          compositional-minimization mode: time the BenchmarkCompose*
#               six (full parallel-product generation vs component lumping
#               plus fold on the rpc model, the streaming model, and the
#               10×-buffer streaming variant whose full product is ~2.7M
#               states) and write results/BENCH_compose.json with the
#               median ns/op, composed state and edge counts of each side,
#               and the per-model speedup and state/edge reductions.
#   -P          pipeline-session mode: time the BenchmarkPipeline* six
#               (the Phase2 question on both study models asked cold — a
#               fresh ephemeral session, full build+generate+solve — vs
#               warm — a re-opened handle on a staged Manager session —
#               vs cache-hit — a cold session answering from a populated
#               ResultCache) and write results/BENCH_pipeline.json with
#               the median ns/op of each variant and the warm and
#               cache-hit speedups over cold per model.
set -eu
cd "$(dirname "$0")/.."

ref=""
count=5
pattern="."
smoke=0
sweepjson=0
batchjson=0
mljson=0
pipejson=0
compjson=0
while getopts "r:c:p:sSBMPC" opt; do
    case "$opt" in
    r) ref=$OPTARG ;;
    c) count=$OPTARG ;;
    p) pattern=$OPTARG ;;
    s) smoke=1 ;;
    S) sweepjson=1 ;;
    B) batchjson=1 ;;
    M) mljson=1 ;;
    P) pipejson=1 ;;
    C) compjson=1 ;;
    *) echo "usage: $0 [-r ref] [-c count] [-p pattern] [-s] [-S] [-B] [-M] [-P] [-C]" >&2; exit 2 ;;
    esac
done

if [ "$smoke" = 1 ]; then
    # -timeout 30m: one race-instrumented iteration of the solver benches
    # can exceed go test's default 10m on a small CI box.
    exec go test -race -run '^$' -bench "$pattern" -benchtime 1x -cpu 1,2 -timeout 30m ./...
fi

if [ "$sweepjson" = 1 ]; then
    out=$(mktemp)
    trap 'rm -f "$out"' EXIT
    benchtime=10x
    echo "== bench: sweep reuse (benchtime $benchtime, count $count) =="
    go test -run '^$' -bench 'SweepReuse(Fresh|Rebind)$' -benchtime "$benchtime" \
        -count "$count" . | tee "$out"
    median() {
        awk -v name="$1" '$1 == "Benchmark"name {print $3}' "$out" |
            sort -n | awk '{v[NR]=$1} END {
                if (NR == 0) { print "error: no samples" > "/dev/stderr"; exit 1 }
                print v[int((NR+1)/2)]
            }'
    }
    fresh=$(median SweepReuseFresh)
    rebind=$(median SweepReuseRebind)
    cpu=$(awk -F': ' '/^cpu:/ {print $2; exit}' "$out")
    mkdir -p results
    awk -v fresh="$fresh" -v rebind="$rebind" -v cpu="$cpu" \
        -v cores="$(getconf _NPROCESSORS_ONLN)" \
        -v go="$(go env GOVERSION)" -v os="$(go env GOOS)/$(go env GOARCH)" \
        -v benchtime="$benchtime, count $count (median reported)" 'BEGIN {
        printf "{\n"
        printf "  \"description\": \"Per-point cost of a Markovian rate sweep, before vs after the rate-parametric sweep engine. Both benchmarks run the same six-point Fig. 3 shutdown-timeout sweep on the revised rpc model: Fresh runs the full generate+build+solve pipeline per point (the pre-engine behaviour), Rebind generates and builds once, rewrites only the rate values per point (ctmc.Rebind, O(edges)) and warm-starts each solve from the anchor point solution (core.Phase2Sweep). Elaboration is outside the timer on both sides. Equal points per iteration, so the ns/op ratio is the per-point speedup; the rebound chains and the sweep outputs are pinned bit-identical/within solver tolerance by tests, so the delta is pure wall-clock.\",\n"
        printf "  \"environment\": {\n"
        printf "    \"cpu\": \"%s\",\n", cpu
        printf "    \"cores\": %d,\n", cores
        printf "    \"go\": \"%s\",\n", go
        printf "    \"os\": \"%s\"\n", os
        printf "  },\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"sweep\": \"rpc revised model, shutdown timeouts {0.5, 1, 2, 5, 10, 25}, 6 points per op\",\n"
        printf "  \"fresh_ns_per_op\": %d,\n", fresh
        printf "  \"rebind_ns_per_op\": %d,\n", rebind
        printf "  \"per_point_speedup\": %.2f\n", fresh / rebind
        printf "}\n"
    }' > results/BENCH_sweepreuse.json
    echo "== results/BENCH_sweepreuse.json =="
    cat results/BENCH_sweepreuse.json
    exit 0
fi

if [ "$batchjson" = 1 ]; then
    out=$(mktemp)
    trap 'rm -f "$out"' EXIT
    benchtime=5x
    echo "== bench: batched solver (benchtime $benchtime, count $count) =="
    go test -run '^$' -bench 'BatchSolve(RPC|Streaming)(PerPoint|CachedPoint|Batched)$' \
        -benchtime "$benchtime" -count "$count" . | tee "$out"
    median() {
        awk -v name="$1" '$1 == "Benchmark"name {print $3}' "$out" |
            sort -n | awk '{v[NR]=$1} END {
                if (NR == 0) { print "error: no samples" > "/dev/stderr"; exit 1 }
                print v[int((NR+1)/2)]
            }'
    }
    rpc_pp=$(median BatchSolveRPCPerPoint)
    rpc_cp=$(median BatchSolveRPCCachedPoint)
    rpc_b=$(median BatchSolveRPCBatched)
    str_pp=$(median BatchSolveStreamingPerPoint)
    str_cp=$(median BatchSolveStreamingCachedPoint)
    str_b=$(median BatchSolveStreamingBatched)
    cpu=$(awk -F': ' '/^cpu:/ {print $2; exit}' "$out")
    mkdir -p results
    awk -v rpc_pp="$rpc_pp" -v rpc_cp="$rpc_cp" -v rpc_b="$rpc_b" \
        -v str_pp="$str_pp" -v str_cp="$str_cp" -v str_b="$str_b" \
        -v cpu="$cpu" -v cores="$(getconf _NPROCESSORS_ONLN)" \
        -v go="$(go env GOVERSION)" -v os="$(go env GOOS)/$(go env GOARCH)" \
        -v benchtime="$benchtime, count $count (median reported)" 'BEGIN {
        printf "{\n"
        printf "  \"description\": \"Cost of a 16-point Markovian rate sweep, per-point solves vs the batched multi-lane kernel. All variants solve the same 16 points on the same prebuilt chain, every lane warm-started from the anchor-point solution, and are pinned bit-identical by the property tests. per_point re-runs the PR 5 path per point: invalidate the cached solve plan, Rebind, solo SteadyState. cached_point keeps the solve-plan cache (this PR) but still solves points one at a time. batched solves the points in eight-lane SolveBatch calls: one CSR traversal per sweep feeds all lanes (vectorized on amd64), finished lanes deactivate and the batch compacts to narrower kernels. Ratios are per-model ns/op quotients; the aggregate is total per-point time over total batched time across both models.\",\n"
        printf "  \"environment\": {\n"
        printf "    \"cpu\": \"%s\",\n", cpu
        printf "    \"cores\": %d,\n", cores
        printf "    \"go\": \"%s\",\n", go
        printf "    \"os\": \"%s\"\n", os
        printf "  },\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"sweep\": \"16 points, 8 lanes per SolveBatch call, tolerance 1e-12\",\n"
        printf "  \"rpc\": {\n"
        printf "    \"model\": \"revised rpc, parametric shutdown timeout\",\n"
        printf "    \"per_point_ns_per_op\": %d,\n", rpc_pp
        printf "    \"cached_point_ns_per_op\": %d,\n", rpc_cp
        printf "    \"batched_ns_per_op\": %d,\n", rpc_b
        printf "    \"speedup_vs_per_point\": %.2f,\n", rpc_pp / rpc_b
        printf "    \"speedup_vs_cached_point\": %.2f\n", rpc_cp / rpc_b
        printf "  },\n"
        printf "  \"streaming\": {\n"
        printf "    \"model\": \"streaming, parametric awake period\",\n"
        printf "    \"per_point_ns_per_op\": %d,\n", str_pp
        printf "    \"cached_point_ns_per_op\": %d,\n", str_cp
        printf "    \"batched_ns_per_op\": %d,\n", str_b
        printf "    \"speedup_vs_per_point\": %.2f,\n", str_pp / str_b
        printf "    \"speedup_vs_cached_point\": %.2f\n", str_cp / str_b
        printf "  },\n"
        printf "  \"aggregate_speedup_vs_per_point\": %.2f\n", (rpc_pp + str_pp) / (rpc_b + str_b)
        printf "}\n"
    }' > results/BENCH_batchsolve.json
    echo "== results/BENCH_batchsolve.json =="
    cat results/BENCH_batchsolve.json
    exit 0
fi

if [ "$mljson" = 1 ]; then
    out=$(mktemp)
    trap 'rm -f "$out"' EXIT
    benchtime=5x
    echo "== bench: multilevel solver (benchtime $benchtime, count $count) =="
    # -timeout 30m: the batched Gauss-Seidel reference alone grinds for
    # minutes at count 5 on a small CI box.
    go test -run '^$' -bench 'Multilevel(Eps(GaussSeidel|Jacobi|Multilevel)|(RPC|Streaming)(GaussSeidel|Multilevel)|EpsBatched(GaussSeidel|Multilevel))$' \
        -benchtime "$benchtime" -count "$count" -timeout 30m . | tee "$out"
    median() {
        awk -v name="$1" '$1 == "Benchmark"name {print $3}' "$out" |
            sort -n | awk '{v[NR]=$1} END {
                if (NR == 0) { print "error: no samples" > "/dev/stderr"; exit 1 }
                print v[int((NR+1)/2)]
            }'
    }
    # metric pulls a b.ReportMetric value (the field preceding its unit:
    # "... 180935 iters/op"); multilevel rows also carry cycles/op, so the
    # column position varies and a fixed-field awk would misread it.
    metric() {
        awk -v name="$1" -v unit="$2" '$1 == "Benchmark"name {
            for (i = 4; i <= NF; i++) if ($i == unit) print $(i-1)
        }' "$out" |
            sort -n | awk '{v[NR]=$1} END {
                if (NR == 0) { print "error: no samples" > "/dev/stderr"; exit 1 }
                print v[int((NR+1)/2)]
            }'
    }
    eps_gs=$(median MultilevelEpsGaussSeidel)
    eps_j=$(median MultilevelEpsJacobi)
    eps_ml=$(median MultilevelEpsMultilevel)
    eps_gs_it=$(metric MultilevelEpsGaussSeidel "iters/op")
    eps_j_it=$(metric MultilevelEpsJacobi "iters/op")
    eps_ml_it=$(metric MultilevelEpsMultilevel "iters/op")
    eps_ml_cy=$(metric MultilevelEpsMultilevel "cycles/op")
    rpc_gs=$(median MultilevelRPCGaussSeidel)
    rpc_ml=$(median MultilevelRPCMultilevel)
    rpc_gs_it=$(metric MultilevelRPCGaussSeidel "iters/op")
    rpc_ml_it=$(metric MultilevelRPCMultilevel "iters/op")
    str_gs=$(median MultilevelStreamingGaussSeidel)
    str_ml=$(median MultilevelStreamingMultilevel)
    str_gs_it=$(metric MultilevelStreamingGaussSeidel "iters/op")
    str_ml_it=$(metric MultilevelStreamingMultilevel "iters/op")
    bat_gs=$(median MultilevelEpsBatchedGaussSeidel)
    bat_ml=$(median MultilevelEpsBatchedMultilevel)
    cpu=$(awk -F': ' '/^cpu:/ {print $2; exit}' "$out")
    mkdir -p results
    awk -v eps_gs="$eps_gs" -v eps_j="$eps_j" -v eps_ml="$eps_ml" \
        -v eps_gs_it="$eps_gs_it" -v eps_j_it="$eps_j_it" \
        -v eps_ml_it="$eps_ml_it" -v eps_ml_cy="$eps_ml_cy" \
        -v rpc_gs="$rpc_gs" -v rpc_ml="$rpc_ml" \
        -v rpc_gs_it="$rpc_gs_it" -v rpc_ml_it="$rpc_ml_it" \
        -v str_gs="$str_gs" -v str_ml="$str_ml" \
        -v str_gs_it="$str_gs_it" -v str_ml_it="$str_ml_it" \
        -v bat_gs="$bat_gs" -v bat_ml="$bat_ml" \
        -v cpu="$cpu" -v cores="$(getconf _NPROCESSORS_ONLN)" \
        -v go="$(go env GOVERSION)" -v os="$(go env GOOS)/$(go env GOARCH)" \
        -v benchtime="$benchtime, count $count (median reported)" 'BEGIN {
        printf "{\n"
        printf "  \"description\": \"Work to converge one steady-state solve, point sweeps vs the multilevel aggregation/disaggregation cycle. epsilon is the two-cluster ε-coupled birth-death chain (80 states, ε = 1e-3, tolerance 1e-10), the near-completely-decomposable regime the multilevel solver targets: iters_per_op counts fine-level sweeps of the converged attempt, cycles_per_op the outer IAD cycles. rpc and streaming are the study chains at their default points (tolerance 1e-12): multilevel cuts iterations there too, but the exact coarse solve per cycle costs more wall-clock than the cheap fast-mixing fine sweeps it saves — reported honestly; the win condition is the decomposable regime, not these. batched_epsilon sweeps 8 couplings spanning one decade in one 8-lane SolveBatch call (tolerance 1e-10): the slowest lane needs ~10x the sweeps of the fastest, and the equalized multilevel cycles collapse exactly that skew. All schemes produce identical results within solver tolerance, pinned by the ctmc tests; multilevel output is additionally pinned bit-identical at any worker/lane count.\",\n"
        printf "  \"environment\": {\n"
        printf "    \"cpu\": \"%s\",\n", cpu
        printf "    \"cores\": %d,\n", cores
        printf "    \"go\": \"%s\",\n", go
        printf "    \"os\": \"%s\"\n", os
        printf "  },\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"epsilon\": {\n"
        printf "    \"model\": \"two 40-state birth-death clusters bridged by rate-1e-3 edges, tolerance 1e-10\",\n"
        printf "    \"gauss_seidel\": { \"ns_per_op\": %.0f, \"iters_per_op\": %d },\n", eps_gs, eps_gs_it
        printf "    \"jacobi\": { \"ns_per_op\": %.0f, \"iters_per_op\": %d },\n", eps_j, eps_j_it
        printf "    \"multilevel\": { \"ns_per_op\": %.0f, \"iters_per_op\": %d, \"cycles_per_op\": %d },\n", eps_ml, eps_ml_it, eps_ml_cy
        printf "    \"iteration_reduction_vs_gauss_seidel\": %.0f,\n", eps_gs_it / eps_ml_it
        printf "    \"iteration_reduction_vs_jacobi\": %.0f,\n", eps_j_it / eps_ml_it
        printf "    \"wall_clock_speedup_vs_gauss_seidel\": %.1f\n", eps_gs / eps_ml
        printf "  },\n"
        printf "  \"rpc\": {\n"
        printf "    \"model\": \"revised rpc, first sweep point, tolerance 1e-12\",\n"
        printf "    \"gauss_seidel\": { \"ns_per_op\": %.0f, \"iters_per_op\": %d },\n", rpc_gs, rpc_gs_it
        printf "    \"multilevel\": { \"ns_per_op\": %.0f, \"iters_per_op\": %d },\n", rpc_ml, rpc_ml_it
        printf "    \"iteration_reduction_vs_gauss_seidel\": %.2f,\n", rpc_gs_it / rpc_ml_it
        printf "    \"wall_clock_speedup_vs_gauss_seidel\": %.2f\n", rpc_gs / rpc_ml
        printf "  },\n"
        printf "  \"streaming\": {\n"
        printf "    \"model\": \"streaming, default awake period, tolerance 1e-12\",\n"
        printf "    \"gauss_seidel\": { \"ns_per_op\": %.0f, \"iters_per_op\": %d },\n", str_gs, str_gs_it
        printf "    \"multilevel\": { \"ns_per_op\": %.0f, \"iters_per_op\": %d },\n", str_ml, str_ml_it
        printf "    \"iteration_reduction_vs_gauss_seidel\": %.2f,\n", str_gs_it / str_ml_it
        printf "    \"wall_clock_speedup_vs_gauss_seidel\": %.2f\n", str_gs / str_ml
        printf "  },\n"
        printf "  \"batched_epsilon\": {\n"
        printf "    \"model\": \"8 couplings 1e-3..1e-4 in one 8-lane SolveBatch, tolerance 1e-10\",\n"
        printf "    \"gauss_seidel_ns_per_op\": %.0f,\n", bat_gs
        printf "    \"multilevel_ns_per_op\": %.0f,\n", bat_ml
        printf "    \"wall_clock_speedup\": %.0f\n", bat_gs / bat_ml
        printf "  }\n"
        printf "}\n"
    }' > results/BENCH_multilevel.json
    echo "== results/BENCH_multilevel.json =="
    cat results/BENCH_multilevel.json
    exit 0
fi

if [ "$pipejson" = 1 ]; then
    out=$(mktemp)
    trap 'rm -f "$out"' EXIT
    benchtime=5x
    echo "== bench: pipeline sessions (benchtime $benchtime, count $count) =="
    go test -run '^$' -bench 'Pipeline(RPC|Streaming)(Cold|Warm|CacheHit)$' \
        -benchtime "$benchtime" -count "$count" . | tee "$out"
    median() {
        awk -v name="$1" '$1 == "Benchmark"name {print $3}' "$out" |
            sort -n | awk '{v[NR]=$1} END {
                if (NR == 0) { print "error: no samples" > "/dev/stderr"; exit 1 }
                print v[int((NR+1)/2)]
            }'
    }
    rpc_cold=$(median PipelineRPCCold)
    rpc_warm=$(median PipelineRPCWarm)
    rpc_hit=$(median PipelineRPCCacheHit)
    str_cold=$(median PipelineStreamingCold)
    str_warm=$(median PipelineStreamingWarm)
    str_hit=$(median PipelineStreamingCacheHit)
    cpu=$(awk -F': ' '/^cpu:/ {print $2; exit}' "$out")
    mkdir -p results
    awk -v rpc_cold="$rpc_cold" -v rpc_warm="$rpc_warm" -v rpc_hit="$rpc_hit" \
        -v str_cold="$str_cold" -v str_warm="$str_warm" -v str_hit="$str_hit" \
        -v cpu="$cpu" -v cores="$(getconf _NPROCESSORS_ONLN)" \
        -v go="$(go env GOVERSION)" -v os="$(go env GOOS)/$(go env GOARCH)" \
        -v benchtime="$benchtime, count $count (median reported)" 'BEGIN {
        printf "{\n"
        printf "  \"description\": \"Cost of one exact Markovian Phase2 answer through the session/handle layer, on both study models. cold runs a fresh ephemeral session per op: build the architectural description, elaborate, generate the state space, build the chain, solve, evaluate the measures — what a one-shot CLI invocation pays. warm re-opens a handle on an already-staged Manager session per op: the spec is content-hashed and interned onto the shared state, so the op costs one SHA-256 of the spec plus a deep clone of the staged report. cache_hit runs a cold session state per op against a populated ResultCache: one spec hash plus a store lookup and clone, no staged artifacts at all — what a re-run with a persistent store would pay. All three paths return deep-equal reports (pinned by the pipeline tests), so the ratios are pure reuse savings.\",\n"
        printf "  \"environment\": {\n"
        printf "    \"cpu\": \"%s\",\n", cpu
        printf "    \"cores\": %d,\n", cores
        printf "    \"go\": \"%s\",\n", go
        printf "    \"os\": \"%s\"\n", os
        printf "  },\n"
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"rpc\": {\n"
        printf "    \"model\": \"revised rpc, default parameters\",\n"
        printf "    \"cold_ns_per_op\": %d,\n", rpc_cold
        printf "    \"warm_ns_per_op\": %d,\n", rpc_warm
        printf "    \"cache_hit_ns_per_op\": %d,\n", rpc_hit
        printf "    \"warm_speedup_vs_cold\": %.0f,\n", rpc_cold / rpc_warm
        printf "    \"cache_hit_speedup_vs_cold\": %.0f\n", rpc_cold / rpc_hit
        printf "  },\n"
        printf "  \"streaming\": {\n"
        printf "    \"model\": \"streaming, default parameters (~50k states)\",\n"
        printf "    \"cold_ns_per_op\": %d,\n", str_cold
        printf "    \"warm_ns_per_op\": %d,\n", str_warm
        printf "    \"cache_hit_ns_per_op\": %d,\n", str_hit
        printf "    \"warm_speedup_vs_cold\": %.0f,\n", str_cold / str_warm
        printf "    \"cache_hit_speedup_vs_cold\": %.0f\n", str_cold / str_hit
        printf "  }\n"
        printf "}\n"
    }' > results/BENCH_pipeline.json
    echo "== results/BENCH_pipeline.json =="
    cat results/BENCH_pipeline.json
    exit 0
fi

if [ "$compjson" = 1 ]; then
    out=$(mktemp)
    trap 'rm -f "$out"' EXIT
    benchtime=1x
    echo "== bench: compositional minimization (benchtime $benchtime, count $count) =="
    # -timeout 60m: one full-product generation of the 10×-buffer
    # streaming variant alone takes ~80s on a small CI box, and it runs
    # count times.
    go test -run '^$' -bench 'Compose(RPC|Streaming|Streaming10x)(Full|Minimized)$' \
        -benchtime "$benchtime" -count "$count" -timeout 60m . | tee "$out"
    median() {
        awk -v name="$1" '$1 == "Benchmark"name {print $3}' "$out" |
            sort -n | awk '{v[NR]=$1} END {
                if (NR == 0) { print "error: no samples" > "/dev/stderr"; exit 1 }
                print v[int((NR+1)/2)]
            }'
    }
    # metric pulls a b.ReportMetric value (the field preceding its unit:
    # "... 38016 states/op"); the rows also carry edges/op and B/op, so
    # the column position varies and a fixed-field awk would misread it.
    metric() {
        awk -v name="$1" -v unit="$2" '$1 == "Benchmark"name {
            for (i = 4; i <= NF; i++) if ($i == unit) print $(i-1)
        }' "$out" |
            sort -n | awk '{v[NR]=$1} END {
                if (NR == 0) { print "error: no samples" > "/dev/stderr"; exit 1 }
                print v[int((NR+1)/2)]
            }'
    }
    emit_model() {
        name=$1
        full_ns=$(median "Compose${name}Full")
        min_ns=$(median "Compose${name}Minimized")
        full_st=$(metric "Compose${name}Full" "states/op")
        min_st=$(metric "Compose${name}Minimized" "states/op")
        full_ed=$(metric "Compose${name}Full" "edges/op")
        min_ed=$(metric "Compose${name}Minimized" "edges/op")
        awk -v full_ns="$full_ns" -v min_ns="$min_ns" \
            -v full_st="$full_st" -v min_st="$min_st" \
            -v full_ed="$full_ed" -v min_ed="$min_ed" 'BEGIN {
            printf "    \"full\": { \"ns_per_op\": %.0f, \"states\": %d, \"edges\": %d },\n", full_ns, full_st, full_ed
            printf "    \"minimized\": { \"ns_per_op\": %.0f, \"states\": %d, \"edges\": %d },\n", min_ns, min_st, min_ed
            printf "    \"state_reduction\": %.1f,\n", full_st / min_st
            printf "    \"edge_reduction\": %.1f,\n", full_ed / min_ed
            printf "    \"wall_clock_speedup\": %.1f\n", full_ns / min_ns
        }'
    }
    cpu=$(awk -F': ' '/^cpu:/ {print $2; exit}' "$out")
    mkdir -p results
    {
        awk -v cpu="$cpu" -v cores="$(getconf _NPROCESSORS_ONLN)" \
            -v go="$(go env GOVERSION)" -v os="$(go env GOOS)/$(go env GOARCH)" \
            -v benchtime="$benchtime, count $count (median reported)" 'BEGIN {
            printf "{\n"
            printf "  \"description\": \"Cost of composing a Markovian state space, full parallel product vs compositional minimization. Full generates the plain product of the architectural description. Minimized lumps each component instance first (ordinary-lumpability partition refinement of its reachable local configuration graph, initial partition keyed by enabled-interaction signature) and generates from the composed quotient with vanishing-state folding, so the full product never materializes. The composed state/edge counts of each side are reported by the benchmarks themselves; every analysis measure is identical on both paths (pinned within 1e-6 by the golden minimize test, bit-identical across worker/lane counts). rpc and streaming are the paper models at their default parameters; streaming_10x raises both stream buffers to 100 frames, the regime where the full product (~2.7M states) dwarfs the quotient and the reduction pays for the lumping many times over.\",\n"
            printf "  \"environment\": {\n"
            printf "    \"cpu\": \"%s\",\n", cpu
            printf "    \"cores\": %d,\n", cores
            printf "    \"go\": \"%s\",\n", go
            printf "    \"os\": \"%s\"\n", os
            printf "  },\n"
            printf "  \"benchtime\": \"%s\",\n", benchtime
            printf "  \"rpc\": {\n"
            printf "    \"model\": \"revised rpc, default parameters\",\n"
        }'
        emit_model RPC
        printf '  },\n  "streaming": {\n    "model": "streaming, default 10-frame buffers",\n'
        emit_model Streaming
        printf '  },\n  "streaming_10x": {\n    "model": "streaming, 100-frame AP and client buffers",\n'
        emit_model Streaming10x
        printf '  }\n}\n'
    } > results/BENCH_compose.json
    echo "== results/BENCH_compose.json =="
    cat results/BENCH_compose.json
    exit 0
fi

bench() {
    go test -run '^$' -bench "$pattern" -benchtime 1x -count "$count" ./...
}

new_out=$(mktemp)
trap 'rm -f "$new_out" "${old_out:-}"' EXIT

echo "== bench: working tree =="
bench | tee "$new_out"

if [ -z "$ref" ]; then
    exit 0
fi

old_out=$(mktemp)
worktree=$(mktemp -d)
git worktree add --detach "$worktree" "$ref" >/dev/null
trap 'rm -f "$new_out" "$old_out"; git worktree remove --force "$worktree" >/dev/null 2>&1 || true' EXIT

echo "== bench: $ref =="
(cd "$worktree" && bench) | tee "$old_out"

if command -v benchstat >/dev/null 2>&1; then
    echo "== benchstat ($ref vs working tree) =="
    benchstat "$old_out" "$new_out"
else
    echo "benchstat not installed; raw outputs above (old: $ref, new: working tree)"
fi
