#!/bin/sh
# CI gate: vet, build, and the full test suite under the race detector.
# The parallel experiment engine (worker pools in internal/sim and
# internal/experiments) makes the race run the load-bearing check here —
# plain `go test` would not exercise the cross-goroutine interactions.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
# ./... covers every package; the fault-tolerance layer is named
# explicitly so a future package split cannot silently drop it from vet.
go vet ./...
go vet ./internal/fault/ ./internal/faultinject/

echo "== go build =="
go build ./...

# Every test invocation carries an explicit -timeout: a deadlocked worker
# pool (the exact failure class the fault-tolerance layer guards against)
# must fail CI within the bound instead of hanging the job.
echo "== go test =="
go test -timeout 10m ./...

echo "== go test -race =="
go test -timeout 10m -race ./...

# Fault-injection smoke under the race detector at -cpu 1,2: one injected
# worker panic and one injected non-convergence per sweep mode (the
# TestFaultInjection* and TestSweep*Escalat*/Panic*/Cancel* properties in
# internal/core and internal/ctmc), on both the degenerate and a two-core
# schedule. The recovery paths — panic capture, lowest-index attribution,
# escalation, checkpoint replay — are themselves concurrent code and get
# their race coverage here.
echo "== fault-injection smoke (-race -cpu 1,2) =="
go test -timeout 10m -race -cpu 1,2 \
    -run 'FaultInject|Panic|Escalat|Cancel|Checkpoint' \
    ./internal/core/ ./internal/ctmc/ ./internal/lts/ ./internal/sim/ ./internal/faultinject/ ./internal/fault/

# Session-sharing smoke under the race detector at -cpu 1,2: concurrent
# goroutines open handles on one shared spec key and solve through the
# single-flight stages (TestSessionSingleFlight), two handles with
# different scheduling configs share one set of staged artifacts
# (TestManagerReusesStagedArtifacts), and concurrent store reads hand out
# private clones (TestStoreHitMatchesFreshSolve). The session layer is
# the one place every driver's goroutines now meet, so its race coverage
# is load-bearing.
echo "== session race smoke (-cpu 1,2) =="
go test -timeout 10m -race -cpu 1,2 \
    -run 'SessionSingleFlight|ManagerReuses|StoreHit' ./internal/pipeline/

# Multilevel solver smoke under the race detector at -cpu 1,2: the
# aggregation/disaggregation cycle, its stalled-decay auto-selection, the
# worker/lane bit-identity properties, the coarse-solve fault-injection
# site, and cancellation mid-cycle (the TestMultilevel* properties in
# internal/ctmc), on both the degenerate and a two-core schedule. The
# fault-injection smoke above already hits the Panic/Cancel subset; this
# run adds the convergence and identity properties under -race, where a
# data race between the shared coarse-plan cache (solvePlan.coarseOnce)
# and concurrent lane solves would surface.
echo "== multilevel race smoke (-cpu 1,2) =="
go test -timeout 10m -race -cpu 1,2 -run 'Multilevel' ./internal/ctmc/

# Compositional-minimization smoke under the race detector at -cpu 1,2:
# the quotient-vs-full properties — component lumping is deterministic
# and generation from the quotient is bit-identical at any worker count
# (TestMinimize* in internal/compose), vanishing-state folding preserves
# throughputs, attributions, and parametric slots and is bit-identical in
# parallel (TestFold* in internal/lts), and the minimized experiment
# suite agrees with the full path within 1e-6 and is bit-identical across
# worker/lane counts (TestGoldenMinimizeAgreement in
# internal/experiments). The lumping and folded generation run inside the
# generation worker pool, so their race coverage is load-bearing.
echo "== compositional-minimization race smoke (-cpu 1,2) =="
go test -timeout 10m -race -cpu 1,2 -run 'Minimize|Fold' \
    ./internal/compose/ ./internal/lts/ ./internal/experiments/

# Benchmark smoke run: one iteration of every benchmark, so a benchmark
# that no longer compiles or panics fails CI without costing bench time.
# -short skips only the 10×-buffer composition pair, whose full product
# is minutes of generation per iteration (scripts/bench_compare.sh -C
# times it properly).
echo "== bench smoke =="
go test -timeout 10m -short -run '^$' -bench . -benchtime 1x ./...

# Race smoke of the parallel hot paths at -cpu 1,2: the worker-pooled
# state-space generation, the Jacobi solver pool (solo and batched), the
# batched multi-lane kernel, and the sweep/simulation pools each run one
# iteration under the race detector on both the degenerate and a two-core
# schedule (plain -race tests cover GOMAXPROCS as-is only).
# Only the Batched variants of the BatchSolve benches run here: the
# per-point variants exercise the solo solver, which the SteadyState
# patterns already race-test, so rerunning them would only add race-
# instrumented minutes without new coverage. Of the Multilevel benches,
# only the multilevel-scheme ε pair runs: the Gauss-Seidel/Jacobi
# reference sides grind for hundreds of thousands of race-instrumented
# sweeps to measure work the timing modes already report. Of the Compose
# benches, the default-size rpc/streaming pairs run and the 10×-buffer
# pair stays out — race-instrumenting a multi-minute full-product
# generation would dominate the job for a path the default sizes already
# cover.
echo "== bench race smoke (-cpu 1,2) =="
scripts/bench_compare.sh -s -p 'Sequential|Parallel|SteadyState(GaussSeidel|Jacobi)|SweepReuse|BatchSolve(RPC|Streaming)Batched|MultilevelEps(Multilevel|BatchedMultilevel)|Compose(RPC|Streaming)(Full|Minimized)$'

echo "CI OK"
