#!/bin/sh
# CI gate: vet, build, and the full test suite under the race detector.
# The parallel experiment engine (worker pools in internal/sim and
# internal/experiments) makes the race run the load-bearing check here —
# plain `go test` would not exercise the cross-goroutine interactions.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
