#!/bin/sh
# CI gate: vet, build, and the full test suite under the race detector.
# The parallel experiment engine (worker pools in internal/sim and
# internal/experiments) makes the race run the load-bearing check here —
# plain `go test` would not exercise the cross-goroutine interactions.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

# Benchmark smoke run: one iteration of every benchmark, so a benchmark
# that no longer compiles or panics fails CI without costing bench time.
echo "== bench smoke =="
go test -run '^$' -bench . -benchtime 1x ./...

# Race smoke of the parallel hot paths at -cpu 1,2: the worker-pooled
# state-space generation, the Jacobi solver pool (solo and batched), the
# batched multi-lane kernel, and the sweep/simulation pools each run one
# iteration under the race detector on both the degenerate and a two-core
# schedule (plain -race tests cover GOMAXPROCS as-is only).
# Only the Batched variants of the BatchSolve benches run here: the
# per-point variants exercise the solo solver, which the SteadyState
# patterns already race-test, so rerunning them would only add race-
# instrumented minutes without new coverage.
echo "== bench race smoke (-cpu 1,2) =="
scripts/bench_compare.sh -s -p 'Sequential|Parallel|SteadyState(GaussSeidel|Jacobi)|SweepReuse|BatchSolve(RPC|Streaming)Batched'

echo "CI OK"
